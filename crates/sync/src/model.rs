//! Deterministic cooperative scheduler and schedule explorer.
//!
//! The model runs every "model thread" on a real OS thread, but serializes
//! them with a single logical token: exactly one thread executes user code
//! at any instant, and every synchronization operation (lock, condvar
//! wait/notify, atomic access, spawn, join, unlock) is a *scheduling
//! point* where the running thread parks itself and a successor is chosen.
//! Because the choice of successor is the only source of nondeterminism,
//! a schedule is fully described by the sequence of choices made at points
//! where more than one thread was runnable — which makes schedules
//! enumerable (bounded-exhaustive DFS with a preemption bound), sampleable
//! (seeded xorshift beyond the DFS budget), and replayable (feed the
//! recorded choice vector back in).
//!
//! Detection machinery:
//! * **Deadlock** — no thread has an enabled transition and no timed
//!   waiter is left to time out.
//! * **Lost wakeup** — a deadlocked condvar waiter whose wait-entry vector
//!   clock does *not* dominate some "missed" notify (a notify that found
//!   no waiters) on the same condvar: the notify raced the wait and its
//!   wakeup was lost. Notifies that happened-before the wait entry are
//!   benign (the waiter could observe their effects through the lock).
//! * **Stall** — nothing is enabled but a timed waiter exists; the
//!   scheduler fires the timeout and counts a stall. With
//!   [`Explorer::fail_on_stall`] the stall itself is the failure, for
//!   protocols that must make progress without their timeout escape hatch.
//! * **Leak** — with [`Explorer::forbid_leaked`], model threads still live
//!   when the root closure returns.
//!
//! Memory model: atomics are sequentially consistent regardless of the
//! `Ordering` argument. The checker explores interleavings, not weak
//! memory — a deliberate scope cut (documented in README) that matches
//! what the workspace relies on (acquire/release pairs on x86-TSO).

use std::cell::RefCell;
use std::collections::{HashSet, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex as StdMutex;
use std::sync::{Arc, PoisonError};

pub mod prims;

const EVENT_LOG_CAP: usize = 160;

/// Globally unique run epoch, used for lazy per-run object registration.
static NEXT_EPOCH: StdAtomicU64 = StdAtomicU64::new(1);

// ---------------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, Default)]
pub(crate) struct VClock(Vec<u32>);

impl VClock {
    fn tick(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, v) in other.0.iter().enumerate() {
            if *v > self.0[i] {
                self.0[i] = *v;
            }
        }
    }

    /// `self` happens-before-or-equals `other` (componentwise `<=`).
    fn le(&self, other: &VClock) -> bool {
        self.0
            .iter()
            .enumerate()
            .all(|(i, v)| *v <= other.0.get(i).copied().unwrap_or(0))
    }
}

// ---------------------------------------------------------------------------
// Public result types
// ---------------------------------------------------------------------------

/// Why an exploration run failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// A model thread panicked (assertion failure in the test body).
    Panic,
    /// No thread had an enabled transition and no missed notify explains it.
    Deadlock,
    /// A condvar waiter is stuck and a racing notify on the same condvar
    /// found no waiter: the wakeup was lost.
    LostWakeup,
    /// Progress required a timed wait to expire (`fail_on_stall` mode).
    Stall,
    /// The root closure returned while model threads were still live
    /// (`forbid_leaked` mode).
    Leak,
    /// The run exceeded `max_steps` scheduling points (livelock guard).
    Livelock,
}

/// A failing schedule: what went wrong, and how to reproduce it.
#[derive(Debug, Clone)]
pub struct Failure {
    pub kind: FailureKind,
    pub message: String,
    /// Comma-separated choice vector; feed back via
    /// `ULTRAVC_MODEL_REPLAY` or [`Explorer::replay_trace`].
    pub trace: String,
    /// Recent scheduler events (most recent last).
    pub log: Vec<String>,
}

impl Failure {
    /// Human-readable report including the replay recipe.
    pub fn render(&self, test_hint: &str) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "model check failed: {:?}: {}\n",
            self.kind, self.message
        ));
        s.push_str(&format!("failing schedule trace: {}\n", self.trace));
        s.push_str(&format!(
            "replay with: ULTRAVC_MODEL_REPLAY='{}' cargo test --features model {test_hint}\n",
            self.trace
        ));
        s.push_str("recent events:\n");
        for e in &self.log {
            s.push_str("  ");
            s.push_str(e);
            s.push('\n');
        }
        s
    }
}

/// Aggregate statistics for one [`Explorer::explore`] call.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Total schedules executed (DFS + sampled + replayed).
    pub schedules: u64,
    /// Distinct schedules (by choice-vector hash).
    pub distinct: u64,
    /// True when the DFS tier exhausted the bounded search space.
    pub dfs_complete: bool,
    /// Timed waits that had to fire because nothing else was enabled.
    pub stalls: u64,
}

// ---------------------------------------------------------------------------
// Scheduler state
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
pub(crate) enum Op {
    Start,
    Yield(&'static str),
    AtomicOp { obj: usize, label: &'static str },
    Lock { obj: usize },
    RwRead { obj: usize },
    RwWrite { obj: usize },
    OnceInit { obj: usize },
    Reacquire { cv: usize, mutex: usize },
    Notify { cv: usize, all: bool },
    Join { target: usize },
}

fn op_desc(op: &Op) -> String {
    match op {
        Op::Start => "start".to_string(),
        Op::Yield(what) => (*what).to_string(),
        Op::AtomicOp { obj, label } => format!("atomic-{label} o{obj}"),
        Op::Lock { obj } => format!("lock o{obj}"),
        Op::RwRead { obj } => format!("rw-read o{obj}"),
        Op::RwWrite { obj } => format!("rw-write o{obj}"),
        Op::OnceInit { obj } => format!("once o{obj}"),
        Op::Reacquire { cv, mutex } => format!("reacquire cv{cv}/o{mutex}"),
        Op::Notify { cv, all } => {
            format!("notify-{} cv{cv}", if *all { "all" } else { "one" })
        }
        Op::Join { target } => format!("join t{target}"),
    }
}

enum Status {
    /// Parked at a scheduling point with a recorded, not-yet-executed op.
    Pending(Op),
    /// Holds the token and is executing user code.
    Active,
    Finished,
}

pub(crate) enum Msg {
    Go,
    Abort,
    RunOver,
}

struct ThreadSlot {
    status: Status,
    tx: Sender<Msg>,
    clock: VClock,
}

struct Waiter {
    tid: usize,
    notified: bool,
    timed: bool,
    timed_out: bool,
    wait_clock: VClock,
}

enum ObjKind {
    Mutex {
        held_by: Option<usize>,
        clock: VClock,
    },
    Cond {
        waiters: Vec<Waiter>,
        missed: Vec<VClock>,
        clock: VClock,
    },
    Rw {
        readers: Vec<usize>,
        writer: Option<usize>,
        clock: VClock,
    },
    Once {
        busy: Option<usize>,
        ready: bool,
        clock: VClock,
    },
    Atomic {
        clock: VClock,
    },
}

#[derive(Clone, Debug)]
struct DecisionRec {
    enabled: Vec<usize>,
    pos: usize,
    preemptions_before: u32,
    running_was_enabled: bool,
}

enum Chooser {
    Dfs { prefix: Vec<usize> },
    Random { state: u64 },
    Replay { v: Vec<usize> },
}

#[derive(Clone)]
struct Options {
    preemption_bound: u32,
    fail_on_stall: bool,
    forbid_leaked: bool,
    max_steps: u64,
}

pub(crate) struct RunState {
    threads: Vec<ThreadSlot>,
    objects: Vec<ObjKind>,
    handles: Vec<Option<std::thread::JoinHandle<()>>>,
    running: usize,
    live: usize,
    decisions: Vec<DecisionRec>,
    preemptions: u32,
    steps: u64,
    stalls: u64,
    failure: Option<Failure>,
    aborting: bool,
    events: VecDeque<String>,
    chooser: Chooser,
    opts: Options,
}

pub(crate) struct Runtime {
    state: StdMutex<RunState>,
    pub(crate) epoch: u64,
}

struct ModelThread {
    rt: Arc<Runtime>,
    tid: usize,
    rx: Receiver<Msg>,
}

thread_local! {
    static CTX: RefCell<Option<ModelThread>> = const { RefCell::new(None) };
}

/// Panic payload used to unwind parked threads when a run aborts.
struct ModelAbort;

pub(crate) fn cur() -> Option<(Arc<Runtime>, usize)> {
    CTX.with(|c| c.borrow().as_ref().map(|m| (Arc::clone(&m.rt), m.tid)))
}

fn lock_state(rt: &Runtime) -> std::sync::MutexGuard<'_, RunState> {
    rt.state.lock().unwrap_or_else(PoisonError::into_inner)
}

pub(crate) fn abort_now() -> ! {
    panic::resume_unwind(Box::new(ModelAbort))
}

fn push_event(st: &mut RunState, ev: String) {
    if st.events.len() >= EVENT_LOG_CAP {
        st.events.pop_front();
    }
    st.events.push_back(ev);
}

fn trace_string(decisions: &[DecisionRec]) -> String {
    let parts: Vec<String> = decisions.iter().map(|d| d.pos.to_string()).collect();
    parts.join(",")
}

fn xorshift(s: &mut u64) -> u64 {
    let mut x = *s;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *s = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

// ---------------------------------------------------------------------------
// Enabledness
// ---------------------------------------------------------------------------

fn op_enabled(st: &RunState, tid: usize, op: &Op) -> bool {
    match op {
        Op::Start | Op::Yield(_) | Op::AtomicOp { .. } | Op::Notify { .. } => true,
        Op::Lock { obj } => matches!(&st.objects[*obj], ObjKind::Mutex { held_by: None, .. }),
        Op::RwRead { obj } => matches!(&st.objects[*obj], ObjKind::Rw { writer: None, .. }),
        Op::RwWrite { obj } => {
            matches!(&st.objects[*obj], ObjKind::Rw { writer: None, readers, .. } if readers.is_empty())
        }
        Op::OnceInit { obj } => match &st.objects[*obj] {
            ObjKind::Once { busy, ready, .. } => *ready || busy.is_none(),
            _ => false,
        },
        Op::Reacquire { cv, mutex } => {
            let woken = match &st.objects[*cv] {
                ObjKind::Cond { waiters, .. } => waiters
                    .iter()
                    .find(|w| w.tid == tid)
                    .map(|w| w.notified || w.timed_out)
                    .unwrap_or(false),
                _ => false,
            };
            woken && matches!(&st.objects[*mutex], ObjKind::Mutex { held_by: None, .. })
        }
        Op::Join { target } => matches!(st.threads[*target].status, Status::Finished),
    }
}

fn enabled_tids(st: &RunState) -> Vec<usize> {
    let mut v: Vec<usize> = (0..st.threads.len())
        .filter(|&t| match &st.threads[t].status {
            Status::Pending(op) => op_enabled(st, t, op),
            _ => false,
        })
        .collect();
    if let Some(pos) = v.iter().position(|&t| t == st.running) {
        if pos != 0 {
            let t = v.remove(pos);
            v.insert(0, t);
        }
    }
    v
}

// ---------------------------------------------------------------------------
// Failure handling
// ---------------------------------------------------------------------------

fn fail(st: &mut RunState, kind: FailureKind, message: String) {
    if st.failure.is_none() {
        st.failure = Some(Failure {
            kind,
            message,
            trace: trace_string(&st.decisions),
            log: st.events.iter().cloned().collect(),
        });
    }
    if st.aborting {
        return;
    }
    st.aborting = true;
    for t in 0..st.threads.len() {
        match st.threads[t].status {
            Status::Pending(_) => {
                let _ = st.threads[t].tx.send(Msg::Abort);
            }
            Status::Finished if t == 0 => {
                // Root may be parked waiting for RunOver after finishing.
                let _ = st.threads[t].tx.send(Msg::RunOver);
            }
            _ => {}
        }
    }
}

fn classify_block(st: &RunState) -> (FailureKind, String) {
    let mut lost = false;
    let mut desc: Vec<String> = Vec::new();
    for (tid, slot) in st.threads.iter().enumerate() {
        if let Status::Pending(op) = &slot.status {
            desc.push(format!("t{tid} blocked on {}", op_desc(op)));
            if let Op::Reacquire { cv, .. } = op {
                if let ObjKind::Cond {
                    waiters, missed, ..
                } = &st.objects[*cv]
                {
                    if let Some(w) = waiters.iter().find(|w| w.tid == tid) {
                        // A missed notify that does NOT happen-before the wait
                        // entry raced it: the wakeup was lost.
                        if !w.notified && missed.iter().any(|m| !m.le(&w.wait_clock)) {
                            lost = true;
                        }
                    }
                }
            }
        }
    }
    let kind = if lost {
        FailureKind::LostWakeup
    } else {
        FailureKind::Deadlock
    };
    (kind, desc.join("; "))
}

/// Lowest (condvar, tid) timed waiter that has not yet fired its timeout.
fn first_unfired_timed_waiter(st: &RunState) -> Option<(usize, usize)> {
    for (obj, kind) in st.objects.iter().enumerate() {
        if let ObjKind::Cond { waiters, .. } = kind {
            if let Some(w) = waiters
                .iter()
                .filter(|w| w.timed && !w.timed_out && !w.notified)
                .min_by_key(|w| w.tid)
            {
                return Some((obj, w.tid));
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// The pick: executed by the current token holder at every scheduling point
// ---------------------------------------------------------------------------

fn pick_and_grant(st: &mut RunState, _me: usize) {
    if st.aborting {
        return;
    }
    st.steps += 1;
    if st.steps > st.opts.max_steps {
        let msg = format!("exceeded max_steps={} scheduling points", st.opts.max_steps);
        fail(st, FailureKind::Livelock, msg);
        return;
    }
    loop {
        let enabled = enabled_tids(st);
        if enabled.is_empty() {
            if st.live == 0 {
                // Run complete; wake the root if it is parked for RunOver.
                let _ = st.threads[0].tx.send(Msg::RunOver);
                return;
            }
            if let Some((cv, wtid)) = first_unfired_timed_waiter(st) {
                if st.opts.fail_on_stall {
                    let (kind, desc) = classify_block(st);
                    let kind = if kind == FailureKind::Deadlock {
                        FailureKind::Stall
                    } else {
                        kind
                    };
                    fail(
                        st,
                        kind,
                        format!("progress required a timed wait to expire: {desc}"),
                    );
                    return;
                }
                st.stalls += 1;
                if let ObjKind::Cond { waiters, .. } = &mut st.objects[cv] {
                    if let Some(w) = waiters.iter_mut().find(|w| w.tid == wtid) {
                        w.timed_out = true;
                    }
                }
                push_event(
                    st,
                    format!("timeout fired for t{wtid} on cv{cv} (global stall)"),
                );
                continue;
            }
            let (kind, desc) = classify_block(st);
            fail(st, kind, desc);
            return;
        }

        let running_was_enabled = enabled[0] == st.running;
        let depth = st.decisions.len();
        let pos = if enabled.len() == 1 {
            Some(0)
        } else {
            match &mut st.chooser {
                Chooser::Dfs { prefix } => {
                    if depth < prefix.len() {
                        let p = prefix[depth];
                        if p < enabled.len() {
                            Some(p)
                        } else {
                            None
                        }
                    } else {
                        Some(0)
                    }
                }
                Chooser::Random { state } => {
                    Some((xorshift(state) % enabled.len() as u64) as usize)
                }
                Chooser::Replay { v } => {
                    if depth < v.len() && v[depth] < enabled.len() {
                        Some(v[depth])
                    } else {
                        None
                    }
                }
            }
        };
        let Some(pos) = pos else {
            fail(
                st,
                FailureKind::Panic,
                "schedule choice out of range: nondeterministic test body or stale trace"
                    .to_string(),
            );
            return;
        };
        if enabled.len() > 1 {
            st.decisions.push(DecisionRec {
                enabled: enabled.clone(),
                pos,
                preemptions_before: st.preemptions,
                running_was_enabled,
            });
        }
        if running_was_enabled && pos != 0 {
            st.preemptions += 1;
        }
        let chosen = enabled[pos];
        st.running = chosen;
        let _ = st.threads[chosen].tx.send(Msg::Go);
        return;
    }
}

/// Block until granted the token (or unwind on abort).
pub(crate) fn wait_grant() {
    let msg = CTX.with(|c| {
        let b = c.borrow();
        let mt = b.as_ref().expect("wait_grant outside a model thread");
        mt.rx.recv()
    });
    match msg {
        Ok(Msg::Go) => {}
        Ok(Msg::Abort) | Err(_) => abort_now(),
        Ok(Msg::RunOver) => abort_now(),
    }
}

/// Record `op` as this thread's pending transition, run the pick, park until
/// granted, then mark Active and tick the clock. Returns the recorded op.
pub(crate) fn sched(
    rt: &Arc<Runtime>,
    tid: usize,
    make_op: impl FnOnce(&mut RunState) -> Op,
) -> Op {
    let mut st = lock_state(rt);
    if st.aborting {
        drop(st);
        abort_now();
    }
    let op = make_op(&mut st);
    st.threads[tid].status = Status::Pending(op.clone());
    pick_and_grant(&mut st, tid);
    drop(st);
    wait_grant();
    let mut st = lock_state(rt);
    st.threads[tid].status = Status::Active;
    st.threads[tid].clock.tick(tid);
    let ev = format!("t{tid} {}", op_desc(&op));
    push_event(&mut st, ev);
    drop(st);
    op
}

// ---------------------------------------------------------------------------
// Object helpers used by the primitives (all called under the state lock)
// ---------------------------------------------------------------------------

impl RunState {
    fn acquire_mutex(&mut self, obj: usize, tid: usize) {
        let clock = match &mut self.objects[obj] {
            ObjKind::Mutex { held_by, clock } => {
                debug_assert!(held_by.is_none(), "model granted a held mutex");
                *held_by = Some(tid);
                clock.clone()
            }
            _ => unreachable!("object {obj} is not a mutex"),
        };
        self.threads[tid].clock.join(&clock);
    }

    fn release_mutex(&mut self, obj: usize, tid: usize) {
        self.threads[tid].clock.tick(tid);
        let tclock = self.threads[tid].clock.clone();
        if let ObjKind::Mutex { held_by, clock } = &mut self.objects[obj] {
            *held_by = None;
            clock.join(&tclock);
        }
    }

    fn sync_clock(&mut self, obj: usize, tid: usize) {
        let tclock = self.threads[tid].clock.clone();
        let oclock = match &mut self.objects[obj] {
            ObjKind::Mutex { clock, .. }
            | ObjKind::Cond { clock, .. }
            | ObjKind::Rw { clock, .. }
            | ObjKind::Once { clock, .. }
            | ObjKind::Atomic { clock } => {
                clock.join(&tclock);
                clock.clone()
            }
        };
        self.threads[tid].clock.join(&oclock);
    }

    fn register(
        &mut self,
        slot: &StdAtomicU64,
        epoch: u64,
        make: impl FnOnce() -> ObjKind,
    ) -> usize {
        let packed = slot.load(StdOrdering::Relaxed);
        if packed != 0 && (packed >> 32) == epoch {
            return ((packed & 0xFFFF_FFFF) - 1) as usize;
        }
        let id = self.objects.len();
        self.objects.push(make());
        slot.store((epoch << 32) | (id as u64 + 1), StdOrdering::Relaxed);
        id
    }
}

pub(crate) fn finish_child(rt: &Arc<Runtime>, tid: usize) {
    let mut st = lock_state(rt);
    st.threads[tid].status = Status::Finished;
    st.live -= 1;
    st.threads[tid].clock.tick(tid);
    push_event(&mut st, format!("t{tid} finished"));
    if st.aborting {
        return;
    }
    if st.live == 0 {
        let _ = st.threads[0].tx.send(Msg::RunOver);
        return;
    }
    pick_and_grant(&mut st, tid);
}

fn finish_quiet(rt: &Arc<Runtime>, tid: usize) {
    let mut st = lock_state(rt);
    st.threads[tid].status = Status::Finished;
    st.live -= 1;
}

fn payload_msg(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

pub(crate) fn child_panicked(rt: &Arc<Runtime>, tid: usize, p: Box<dyn std::any::Any + Send>) {
    if p.downcast_ref::<ModelAbort>().is_some() {
        finish_quiet(rt, tid);
        return;
    }
    let msg = payload_msg(p.as_ref());
    let mut st = lock_state(rt);
    st.threads[tid].status = Status::Finished;
    st.live -= 1;
    fail(
        &mut st,
        FailureKind::Panic,
        format!("panic on t{tid}: {msg}"),
    );
}

/// Spawn bookkeeping: register a new model thread, return (tid, receiver).
pub(crate) fn register_thread(rt: &Arc<Runtime>, parent: usize) -> (usize, Receiver<Msg>) {
    let (tx, rx) = channel();
    let mut st = lock_state(rt);
    if st.aborting {
        drop(st);
        abort_now();
    }
    let tid = st.threads.len();
    let mut clock = st.threads[parent].clock.clone();
    clock.tick(tid);
    st.threads.push(ThreadSlot {
        status: Status::Pending(Op::Start),
        tx,
        clock,
    });
    st.live += 1;
    push_event(&mut st, format!("t{parent} spawned t{tid}"));
    (tid, rx)
}

pub(crate) fn record_handle(rt: &Arc<Runtime>, handle: std::thread::JoinHandle<()>) {
    let mut st = lock_state(rt);
    st.handles.push(Some(handle));
}

pub(crate) fn install_ctx(rt: Arc<Runtime>, tid: usize, rx: Receiver<Msg>) {
    CTX.with(|c| {
        let prev = c.borrow_mut().replace(ModelThread { rt, tid, rx });
        assert!(prev.is_none(), "nested model context on one OS thread");
    });
}

pub(crate) fn clear_ctx() {
    CTX.with(|c| {
        c.borrow_mut().take();
    });
}

/// First grant for a freshly spawned model thread (its `Start` op).
pub(crate) fn await_start() {
    wait_grant();
    if let Some((rt, tid)) = cur() {
        let mut st = lock_state(&rt);
        st.threads[tid].status = Status::Active;
        st.threads[tid].clock.tick(tid);
        push_event(&mut st, format!("t{tid} start"));
    }
}

// Accessors used by prims.
pub(crate) fn with_state<R>(rt: &Runtime, f: impl FnOnce(&mut RunState) -> R) -> R {
    let mut st = lock_state(rt);
    f(&mut st)
}

pub(crate) use state_api::*;

/// Narrow, typed surface over `RunState` for the primitive implementations,
/// keeping all field access in this module.
mod state_api {
    use super::*;

    pub(crate) fn reg_mutex(st: &mut RunState, slot: &StdAtomicU64, epoch: u64) -> usize {
        st.register(slot, epoch, || ObjKind::Mutex {
            held_by: None,
            clock: VClock::default(),
        })
    }

    pub(crate) fn reg_cond(st: &mut RunState, slot: &StdAtomicU64, epoch: u64) -> usize {
        st.register(slot, epoch, || ObjKind::Cond {
            waiters: Vec::new(),
            missed: Vec::new(),
            clock: VClock::default(),
        })
    }

    pub(crate) fn reg_rw(st: &mut RunState, slot: &StdAtomicU64, epoch: u64) -> usize {
        st.register(slot, epoch, || ObjKind::Rw {
            readers: Vec::new(),
            writer: None,
            clock: VClock::default(),
        })
    }

    pub(crate) fn reg_once(st: &mut RunState, slot: &StdAtomicU64, epoch: u64) -> usize {
        st.register(slot, epoch, || ObjKind::Once {
            busy: None,
            ready: false,
            clock: VClock::default(),
        })
    }

    pub(crate) fn reg_atomic(st: &mut RunState, slot: &StdAtomicU64, epoch: u64) -> usize {
        st.register(slot, epoch, || ObjKind::Atomic {
            clock: VClock::default(),
        })
    }

    pub(crate) fn exec_acquire_mutex(st: &mut RunState, obj: usize, tid: usize) {
        st.acquire_mutex(obj, tid);
    }

    pub(crate) fn exec_release_mutex(st: &mut RunState, obj: usize, tid: usize) {
        st.release_mutex(obj, tid);
    }

    pub(crate) fn exec_sync_clock(st: &mut RunState, obj: usize, tid: usize) {
        st.sync_clock(obj, tid);
    }

    pub(crate) fn is_aborting(st: &RunState) -> bool {
        st.aborting
    }

    /// Atomically release the mutex and register as a condvar waiter
    /// (the non-branching half of `Condvar::wait`).
    pub(crate) fn enter_wait(st: &mut RunState, cv: usize, mutex: usize, tid: usize, timed: bool) {
        st.release_mutex(mutex, tid);
        st.threads[tid].clock.tick(tid);
        let wait_clock = st.threads[tid].clock.clone();
        if let ObjKind::Cond { waiters, .. } = &mut st.objects[cv] {
            waiters.push(Waiter {
                tid,
                notified: false,
                timed,
                timed_out: false,
                wait_clock,
            });
        }
        push_event(st, format!("t{tid} cond-wait cv{cv} (timed={timed})"));
        st.threads[tid].status = Status::Pending(Op::Reacquire { cv, mutex });
        pick_and_grant(st, tid);
    }

    /// Complete a granted `Reacquire`: pop the waiter entry, sync clocks,
    /// take the mutex. Returns whether the wait ended by timeout.
    pub(crate) fn exec_reacquire(st: &mut RunState, cv: usize, mutex: usize, tid: usize) -> bool {
        st.threads[tid].status = Status::Active;
        st.threads[tid].clock.tick(tid);
        let mut timed_out = false;
        if let ObjKind::Cond { waiters, .. } = &mut st.objects[cv] {
            if let Some(i) = waiters.iter().position(|w| w.tid == tid) {
                let w = waiters.remove(i);
                timed_out = w.timed_out && !w.notified;
            }
        }
        st.sync_clock(cv, tid);
        st.acquire_mutex(mutex, tid);
        push_event(
            st,
            format!("t{tid} reacquired o{mutex} (timed_out={timed_out})"),
        );
        timed_out
    }

    pub(crate) fn exec_notify(st: &mut RunState, cv: usize, tid: usize, all: bool) {
        let tclock = st.threads[tid].clock.clone();
        let mut woke = 0usize;
        if let ObjKind::Cond {
            waiters,
            missed,
            clock,
        } = &mut st.objects[cv]
        {
            clock.join(&tclock);
            for w in waiters.iter_mut() {
                if !w.notified {
                    w.notified = true;
                    woke += 1;
                    if !all {
                        break;
                    }
                }
            }
            if woke == 0 {
                missed.push(tclock);
            }
        }
        if woke == 0 {
            push_event(st, format!("t{tid} notify on cv{cv} MISSED (no waiters)"));
        }
    }

    pub(crate) fn exec_rw_read_acquire(st: &mut RunState, obj: usize, tid: usize) {
        let clock = match &mut st.objects[obj] {
            ObjKind::Rw { readers, clock, .. } => {
                readers.push(tid);
                clock.clone()
            }
            _ => unreachable!("object {obj} is not a RwLock"),
        };
        st.threads[tid].clock.join(&clock);
    }

    pub(crate) fn exec_rw_write_acquire(st: &mut RunState, obj: usize, tid: usize) {
        let clock = match &mut st.objects[obj] {
            ObjKind::Rw { writer, clock, .. } => {
                *writer = Some(tid);
                clock.clone()
            }
            _ => unreachable!("object {obj} is not a RwLock"),
        };
        st.threads[tid].clock.join(&clock);
    }

    pub(crate) fn exec_rw_release(st: &mut RunState, obj: usize, tid: usize, write: bool) {
        st.threads[tid].clock.tick(tid);
        let tclock = st.threads[tid].clock.clone();
        if let ObjKind::Rw {
            readers,
            writer,
            clock,
        } = &mut st.objects[obj]
        {
            if write {
                *writer = None;
            } else if let Some(i) = readers.iter().position(|&t| t == tid) {
                readers.remove(i);
            }
            clock.join(&tclock);
        }
    }

    pub(crate) fn once_status(st: &mut RunState, obj: usize) -> (bool, bool) {
        match &st.objects[obj] {
            ObjKind::Once { busy, ready, .. } => (busy.is_some(), *ready),
            _ => (false, false),
        }
    }

    pub(crate) fn once_begin(st: &mut RunState, obj: usize, tid: usize) {
        if let ObjKind::Once { busy, .. } = &mut st.objects[obj] {
            *busy = Some(tid);
        }
    }

    pub(crate) fn once_complete(st: &mut RunState, obj: usize, tid: usize) {
        st.threads[tid].clock.tick(tid);
        let tclock = st.threads[tid].clock.clone();
        if let ObjKind::Once { busy, ready, clock } = &mut st.objects[obj] {
            *busy = None;
            *ready = true;
            clock.join(&tclock);
        }
    }

    pub(crate) fn thread_finished(st: &mut RunState, tid: usize) -> bool {
        matches!(st.threads[tid].status, Status::Finished)
    }

    pub(crate) fn join_thread_clock(st: &mut RunState, me: usize, target: usize) {
        let clock = st.threads[target].clock.clone();
        st.threads[me].clock.join(&clock);
    }
}

// ---------------------------------------------------------------------------
// One run
// ---------------------------------------------------------------------------

struct RunResult {
    decisions: Vec<DecisionRec>,
    stalls: u64,
    failure: Option<Failure>,
}

fn root_wait_runover() {
    loop {
        let msg = CTX.with(|c| {
            let b = c.borrow();
            let mt = b.as_ref().expect("root context missing");
            mt.rx.recv()
        });
        match msg {
            Ok(Msg::RunOver) | Ok(Msg::Abort) | Err(_) => break,
            Ok(Msg::Go) => continue,
        }
    }
}

fn run_once(opts: &Options, chooser: Chooser, f: &dyn Fn()) -> RunResult {
    let epoch = NEXT_EPOCH.fetch_add(1, StdOrdering::Relaxed) & 0xFFFF_FFFF;
    let (tx0, rx0) = channel();
    let rt = Arc::new(Runtime {
        state: StdMutex::new(RunState {
            threads: vec![ThreadSlot {
                status: Status::Active,
                tx: tx0,
                clock: VClock::default(),
            }],
            objects: Vec::new(),
            handles: vec![None],
            running: 0,
            live: 1,
            decisions: Vec::new(),
            preemptions: 0,
            steps: 0,
            stalls: 0,
            failure: None,
            aborting: false,
            events: VecDeque::new(),
            chooser,
            opts: opts.clone(),
        }),
        epoch,
    });
    install_ctx(Arc::clone(&rt), 0, rx0);

    let res = panic::catch_unwind(AssertUnwindSafe(f));

    match res {
        Ok(()) => {
            let mut st = lock_state(&rt);
            if !st.aborting && st.live > 1 && st.opts.forbid_leaked {
                let leaked: Vec<String> = st
                    .threads
                    .iter()
                    .enumerate()
                    .skip(1)
                    .filter(|(_, s)| !matches!(s.status, Status::Finished))
                    .map(|(t, _)| format!("t{t}"))
                    .collect();
                fail(
                    &mut st,
                    FailureKind::Leak,
                    format!(
                        "root returned with live model threads: {}",
                        leaked.join(", ")
                    ),
                );
            }
            st.threads[0].status = Status::Finished;
            st.live -= 1;
            let wait = if !st.aborting && st.live > 0 {
                pick_and_grant(&mut st, 0);
                true
            } else {
                false
            };
            drop(st);
            if wait {
                root_wait_runover();
            }
        }
        Err(p) => {
            if p.downcast_ref::<ModelAbort>().is_none() {
                let msg = payload_msg(p.as_ref());
                let mut st = lock_state(&rt);
                st.threads[0].status = Status::Finished;
                st.live -= 1;
                fail(&mut st, FailureKind::Panic, format!("panic on t0: {msg}"));
            } else {
                let mut st = lock_state(&rt);
                st.threads[0].status = Status::Finished;
                st.live -= 1;
            }
        }
    }

    clear_ctx();

    let handles: Vec<Option<std::thread::JoinHandle<()>>> = {
        let mut st = lock_state(&rt);
        std::mem::take(&mut st.handles)
    };
    for h in handles.into_iter().flatten() {
        let _ = h.join();
    }

    let mut st = lock_state(&rt);
    RunResult {
        decisions: std::mem::take(&mut st.decisions),
        stalls: st.stalls,
        failure: st.failure.take(),
    }
}

fn next_dfs_prefix(decisions: &[DecisionRec], bound: u32) -> Option<Vec<usize>> {
    for i in (0..decisions.len()).rev() {
        let d = &decisions[i];
        for np in d.pos + 1..d.enabled.len() {
            // Position 0 is the currently running thread when it is enabled;
            // any other position is a preemption and must respect the bound.
            if d.running_was_enabled && np != 0 && d.preemptions_before >= bound {
                break;
            }
            let mut prefix: Vec<usize> = decisions[..i].iter().map(|x| x.pos).collect();
            prefix.push(np);
            return Some(prefix);
        }
    }
    None
}

fn hash_decisions(decisions: &[DecisionRec]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for d in decisions {
        h ^= d.pos as u64 + 1;
        h = h.wrapping_mul(0x1000_0000_01b3);
        h ^= d.enabled[d.pos] as u64 + 0x100;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Explorer
// ---------------------------------------------------------------------------

/// Schedule explorer: configure bounds, then [`explore`](Self::explore) a
/// closure that spawns model threads via `ultravc_sync::thread::spawn` and
/// synchronizes through the facade primitives.
pub struct Explorer {
    name: &'static str,
    preemption_bound: u32,
    dfs_budget: u64,
    samples: u64,
    seed: u64,
    fail_on_stall: bool,
    forbid_leaked: bool,
    max_steps: u64,
    replay: Option<Vec<usize>>,
}

impl Explorer {
    /// `name` is the test hint printed in the replay recipe on failure.
    pub fn new(name: &'static str) -> Self {
        Explorer {
            name,
            preemption_bound: 2,
            dfs_budget: 20_000,
            samples: 0,
            seed: 0x5eed_cafe,
            fail_on_stall: false,
            forbid_leaked: false,
            max_steps: 50_000,
            replay: None,
        }
    }

    /// Max preemptive context switches per schedule in the DFS tier.
    pub fn preemption_bound(mut self, n: u32) -> Self {
        self.preemption_bound = n;
        self
    }

    /// Max schedules for the bounded-exhaustive DFS tier.
    pub fn dfs_budget(mut self, n: u64) -> Self {
        self.dfs_budget = n;
        self
    }

    /// Extra seeded-random schedules after the DFS tier.
    pub fn samples(mut self, n: u64) -> Self {
        self.samples = n;
        self
    }

    /// Seed for the random tier (overridden by `ULTRAVC_MODEL_SEED`).
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Treat any fired wait timeout as a failure: the protocol must make
    /// progress without its timeout escape hatch.
    pub fn fail_on_stall(mut self, on: bool) -> Self {
        self.fail_on_stall = on;
        self
    }

    /// Fail if the root closure returns while model threads are still live.
    pub fn forbid_leaked(mut self, on: bool) -> Self {
        self.forbid_leaked = on;
        self
    }

    /// Livelock guard: max scheduling points per run.
    pub fn max_steps(mut self, n: u64) -> Self {
        self.max_steps = n;
        self
    }

    /// Replay a single recorded schedule (comma-separated choice vector,
    /// as printed in a [`Failure`] trace).
    pub fn replay_trace(mut self, trace: &str) -> Self {
        self.replay = Some(parse_trace(trace));
        self
    }

    /// Explore schedules; return the report and the first failure, if any.
    pub fn explore_result<F: Fn()>(&self, f: F) -> (Report, Option<Failure>) {
        assert!(cur().is_none(), "nested model exploration is not supported");
        let opts = Options {
            preemption_bound: self.preemption_bound,
            fail_on_stall: self.fail_on_stall,
            forbid_leaked: self.forbid_leaked,
            max_steps: self.max_steps,
        };
        let replay = self.replay.clone().or_else(|| {
            std::env::var("ULTRAVC_MODEL_REPLAY")
                .ok()
                .map(|s| parse_trace(&s))
        });
        let seed = std::env::var("ULTRAVC_MODEL_SEED")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
            .unwrap_or(self.seed);

        let mut report = Report::default();
        let mut seen: HashSet<u64> = HashSet::new();

        if let Some(v) = replay {
            let rr = run_once(&opts, Chooser::Replay { v }, &f);
            report.schedules = 1;
            report.distinct = 1;
            report.stalls = rr.stalls;
            return (report, rr.failure);
        }

        // Tier 1: bounded-exhaustive DFS.
        let mut prefix: Vec<usize> = Vec::new();
        loop {
            let rr = run_once(
                &opts,
                Chooser::Dfs {
                    prefix: prefix.clone(),
                },
                &f,
            );
            report.schedules += 1;
            report.stalls += rr.stalls;
            seen.insert(hash_decisions(&rr.decisions));
            if let Some(fl) = rr.failure {
                report.distinct = seen.len() as u64;
                return (report, Some(fl));
            }
            match next_dfs_prefix(&rr.decisions, opts.preemption_bound) {
                None => {
                    report.dfs_complete = true;
                    break;
                }
                Some(_) if report.schedules >= self.dfs_budget => break,
                Some(p) => prefix = p,
            }
        }

        // Tier 2: seeded random sampling.
        let mut s = seed | 1;
        for _ in 0..self.samples {
            let per_run = xorshift(&mut s) | 1;
            let rr = run_once(&opts, Chooser::Random { state: per_run }, &f);
            report.schedules += 1;
            report.stalls += rr.stalls;
            seen.insert(hash_decisions(&rr.decisions));
            if let Some(fl) = rr.failure {
                report.distinct = seen.len() as u64;
                return (report, Some(fl));
            }
        }

        report.distinct = seen.len() as u64;
        (report, None)
    }

    /// Explore schedules; panic with a rendered, replayable trace on the
    /// first failing schedule.
    pub fn explore<F: Fn()>(&self, f: F) -> Report {
        let (report, failure) = self.explore_result(f);
        if let Some(fl) = failure {
            let rendered = fl.render(self.name);
            if let Ok(path) = std::env::var("ULTRAVC_MODEL_TRACE_FILE") {
                use std::io::Write as _;
                if let Ok(mut out) = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                {
                    let _ = writeln!(out, "== {} ==\n{rendered}", self.name);
                }
            }
            eprintln!("{rendered}");
            panic!(
                "model check '{}' failed: {:?}: {}",
                self.name, fl.kind, fl.message
            );
        }
        report
    }
}

fn parse_trace(s: &str) -> Vec<usize> {
    s.split(',')
        .filter(|t| !t.trim().is_empty())
        .map(|t| {
            t.trim()
                .parse::<usize>()
                .unwrap_or_else(|_| panic!("bad trace element {t:?}: expected usize"))
        })
        .collect()
}
