//! Instrumented sync primitives (model path of the facade).
//!
//! Each type wraps its `std::sync` counterpart plus a lazily-registered
//! model-object id. On threads that belong to a running
//! [`Explorer`](super::Explorer) every operation becomes a scheduling
//! point; on ordinary threads the types transparently delegate to `std`,
//! so binaries and plain tests behave identically in a `--features model`
//! build.
//!
//! Logical ownership is the key invariant: the scheduler only grants a
//! `Lock` transition when the mutex is logically free, so the *inner* std
//! lock is always uncontended — model threads never block the OS on a std
//! primitive, which is what keeps the token-passing scheduler live (and
//! keeps this crate `#![forbid(unsafe_code)]`).

use std::panic::{RefUnwindSafe, UnwindSafe};
use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering};
use std::sync::{Arc, LockResult, Mutex as StdMutex, PoisonError};
use std::time::Duration;

use super::{
    await_start, child_panicked, cur, exec_acquire_mutex, exec_notify, exec_reacquire,
    exec_release_mutex, exec_rw_read_acquire, exec_rw_release, exec_rw_write_acquire,
    exec_sync_clock, finish_child, install_ctx, is_aborting, join_thread_clock, once_begin,
    once_complete, once_status, record_handle, reg_atomic, reg_cond, reg_mutex, reg_once, reg_rw,
    register_thread, sched, thread_finished, with_state, Op, Runtime,
};

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Model-aware mutex (API subset of `std::sync::Mutex`).
pub struct Mutex<T: ?Sized> {
    slot: StdAtomicU64,
    inner: StdMutex<T>,
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Self {
        Mutex {
            slot: StdAtomicU64::new(0),
            inner: StdMutex::new(t),
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    fn obj_id(&self, st: &mut super::RunState, rt: &Runtime) -> usize {
        reg_mutex(st, &self.slot, rt.epoch)
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match cur() {
            None => match self.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    lock: self,
                    inner: Some(g),
                    model: false,
                }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    lock: self,
                    inner: Some(p.into_inner()),
                    model: false,
                })),
            },
            Some((rt, tid)) => {
                let op = sched(&rt, tid, |st| Op::Lock {
                    obj: self.obj_id(st, &rt),
                });
                let Op::Lock { obj } = op else { unreachable!() };
                with_state(&rt, |st| exec_acquire_mutex(st, obj, tid));
                let g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
                Ok(MutexGuard {
                    lock: self,
                    inner: Some(g),
                    model: true,
                })
            }
        }
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: ?Sized> UnwindSafe for Mutex<T> {}
impl<T: ?Sized> RefUnwindSafe for Mutex<T> {}

/// Guard for [`Mutex`]; releases logical ownership (a visible scheduling
/// point) on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    model: bool,
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

impl<T: ?Sized + std::fmt::Display> std::fmt::Display for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("mutex guard already released")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("mutex guard already released")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        drop(inner);
        if !self.model {
            return;
        }
        let Some((rt, tid)) = cur() else { return };
        let quiet = with_state(&rt, |st| {
            if is_aborting(st) {
                return true;
            }
            let obj = self.lock.obj_id(st, &rt);
            exec_release_mutex(st, obj, tid);
            false
        });
        // During a real panic unwind, scheduling from a destructor could
        // itself unwind (run abort) and turn into a double panic; skip the
        // visible yield — the run is failing anyway.
        if !quiet && !std::thread::panicking() {
            sched(&rt, tid, |_| Op::Yield("unlock"));
        }
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Result of a timed condvar wait (model counterpart of
/// `std::sync::WaitTimeoutResult`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Model-aware condition variable. In the model, a timed wait only "times
/// out" when no thread in the system has an enabled transition — the
/// scheduler then fires the earliest timed waiter and counts a stall.
#[derive(Default)]
pub struct Condvar {
    slot: StdAtomicU64,
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            slot: StdAtomicU64::new(0),
            inner: std::sync::Condvar::new(),
        }
    }

    fn obj_id(&self, st: &mut super::RunState, rt: &Runtime) -> usize {
        reg_cond(st, &self.slot, rt.epoch)
    }

    fn model_wait<'a, T>(
        &self,
        rt: Arc<Runtime>,
        tid: usize,
        guard: MutexGuard<'a, T>,
        timed: bool,
    ) -> (MutexGuard<'a, T>, bool) {
        let lock = guard.lock;
        let mut guard = guard;
        // Dismantle the guard without triggering its release scheduling
        // point: wait must release the lock atomically with parking.
        let inner = guard.inner.take();
        guard.model = false;
        drop(guard);
        let (cv, mx) = with_state(&rt, |st| {
            if is_aborting(st) {
                drop(inner);
                return (usize::MAX, usize::MAX);
            }
            let cv = self.obj_id(st, &rt);
            let mx = lock.obj_id(st, &rt);
            drop(inner);
            super::enter_wait(st, cv, mx, tid, timed);
            (cv, mx)
        });
        if cv == usize::MAX {
            super::abort_now();
        }
        super::wait_grant();
        let timed_out = with_state(&rt, |st| exec_reacquire(st, cv, mx, tid));
        let g = lock.inner.lock().unwrap_or_else(PoisonError::into_inner);
        (
            MutexGuard {
                lock,
                inner: Some(g),
                model: true,
            },
            timed_out,
        )
    }

    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match cur() {
            None => {
                let mut guard = guard;
                let inner = guard.inner.take().expect("wait on released guard");
                guard.model = false;
                let lock = guard.lock;
                drop(guard);
                match self.inner.wait(inner) {
                    Ok(g) => Ok(MutexGuard {
                        lock,
                        inner: Some(g),
                        model: false,
                    }),
                    Err(p) => Err(PoisonError::new(MutexGuard {
                        lock,
                        inner: Some(p.into_inner()),
                        model: false,
                    })),
                }
            }
            Some((rt, tid)) => {
                let (g, _) = self.model_wait(rt, tid, guard, false);
                Ok(g)
            }
        }
    }

    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        match cur() {
            None => {
                let mut guard = guard;
                let inner = guard.inner.take().expect("wait on released guard");
                guard.model = false;
                let lock = guard.lock;
                drop(guard);
                match self.inner.wait_timeout(inner, dur) {
                    Ok((g, r)) => Ok((
                        MutexGuard {
                            lock,
                            inner: Some(g),
                            model: false,
                        },
                        WaitTimeoutResult(r.timed_out()),
                    )),
                    Err(p) => {
                        let (g, r) = p.into_inner();
                        Err(PoisonError::new((
                            MutexGuard {
                                lock,
                                inner: Some(g),
                                model: false,
                            },
                            WaitTimeoutResult(r.timed_out()),
                        )))
                    }
                }
            }
            Some((rt, tid)) => {
                let (g, timed_out) = self.model_wait(rt, tid, guard, true);
                Ok((g, WaitTimeoutResult(timed_out)))
            }
        }
    }

    pub fn wait_timeout_while<'a, T, F>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
        mut condition: F,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)>
    where
        F: FnMut(&mut T) -> bool,
    {
        let mut g = guard;
        loop {
            if !condition(&mut g) {
                return Ok((g, WaitTimeoutResult(false)));
            }
            let (ng, r) = match self.wait_timeout(g, dur) {
                Ok(pair) => pair,
                Err(p) => return Err(p),
            };
            g = ng;
            if r.timed_out() {
                return Ok((g, WaitTimeoutResult(true)));
            }
        }
    }

    pub fn wait_while<'a, T, F>(
        &self,
        guard: MutexGuard<'a, T>,
        mut condition: F,
    ) -> LockResult<MutexGuard<'a, T>>
    where
        F: FnMut(&mut T) -> bool,
    {
        let mut g = guard;
        loop {
            if !condition(&mut g) {
                return Ok(g);
            }
            g = match self.wait(g) {
                Ok(g) => g,
                Err(p) => return Err(p),
            };
        }
    }

    pub fn notify_one(&self) {
        match cur() {
            None => self.inner.notify_one(),
            Some((rt, tid)) => {
                let op = sched(&rt, tid, |st| Op::Notify {
                    cv: self.obj_id(st, &rt),
                    all: false,
                });
                let Op::Notify { cv, .. } = op else {
                    unreachable!()
                };
                with_state(&rt, |st| exec_notify(st, cv, tid, false));
            }
        }
    }

    pub fn notify_all(&self) {
        match cur() {
            None => self.inner.notify_all(),
            Some((rt, tid)) => {
                let op = sched(&rt, tid, |st| Op::Notify {
                    cv: self.obj_id(st, &rt),
                    all: true,
                });
                let Op::Notify { cv, .. } = op else {
                    unreachable!()
                };
                with_state(&rt, |st| exec_notify(st, cv, tid, true));
            }
        }
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// Model-aware reader-writer lock (API subset of `std::sync::RwLock`).
pub struct RwLock<T: ?Sized> {
    slot: StdAtomicU64,
    inner: std::sync::RwLock<T>,
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T> RwLock<T> {
    pub const fn new(t: T) -> Self {
        RwLock {
            slot: StdAtomicU64::new(0),
            inner: std::sync::RwLock::new(t),
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    fn obj_id(&self, st: &mut super::RunState, rt: &Runtime) -> usize {
        reg_rw(st, &self.slot, rt.epoch)
    }

    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        match cur() {
            None => match self.inner.read() {
                Ok(g) => Ok(RwLockReadGuard {
                    lock: self,
                    inner: Some(g),
                    model: false,
                }),
                Err(p) => Err(PoisonError::new(RwLockReadGuard {
                    lock: self,
                    inner: Some(p.into_inner()),
                    model: false,
                })),
            },
            Some((rt, tid)) => {
                let op = sched(&rt, tid, |st| Op::RwRead {
                    obj: self.obj_id(st, &rt),
                });
                let Op::RwRead { obj } = op else {
                    unreachable!()
                };
                with_state(&rt, |st| exec_rw_read_acquire(st, obj, tid));
                let g = self.inner.read().unwrap_or_else(PoisonError::into_inner);
                Ok(RwLockReadGuard {
                    lock: self,
                    inner: Some(g),
                    model: true,
                })
            }
        }
    }

    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        match cur() {
            None => match self.inner.write() {
                Ok(g) => Ok(RwLockWriteGuard {
                    lock: self,
                    inner: Some(g),
                    model: false,
                }),
                Err(p) => Err(PoisonError::new(RwLockWriteGuard {
                    lock: self,
                    inner: Some(p.into_inner()),
                    model: false,
                })),
            },
            Some((rt, tid)) => {
                let op = sched(&rt, tid, |st| Op::RwWrite {
                    obj: self.obj_id(st, &rt),
                });
                let Op::RwWrite { obj } = op else {
                    unreachable!()
                };
                with_state(&rt, |st| exec_rw_write_acquire(st, obj, tid));
                let g = self.inner.write().unwrap_or_else(PoisonError::into_inner);
                Ok(RwLockWriteGuard {
                    lock: self,
                    inner: Some(g),
                    model: true,
                })
            }
        }
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

macro_rules! rw_guard {
    ($name:ident, $std:ident, $write:expr) => {
        pub struct $name<'a, T: ?Sized> {
            lock: &'a RwLock<T>,
            inner: Option<std::sync::$std<'a, T>>,
            model: bool,
        }

        impl<T: ?Sized> std::ops::Deref for $name<'_, T> {
            type Target = T;
            fn deref(&self) -> &T {
                self.inner
                    .as_deref()
                    .expect("rwlock guard already released")
            }
        }

        impl<T: ?Sized> Drop for $name<'_, T> {
            fn drop(&mut self) {
                let Some(inner) = self.inner.take() else {
                    return;
                };
                drop(inner);
                if !self.model {
                    return;
                }
                let Some((rt, tid)) = cur() else { return };
                let quiet = with_state(&rt, |st| {
                    if is_aborting(st) {
                        return true;
                    }
                    let obj = self.lock.obj_id(st, &rt);
                    exec_rw_release(st, obj, tid, $write);
                    false
                });
                if !quiet && !std::thread::panicking() {
                    sched(&rt, tid, |_| Op::Yield("rw-unlock"));
                }
            }
        }
    };
}

rw_guard!(RwLockReadGuard, RwLockReadGuard, false);
rw_guard!(RwLockWriteGuard, RwLockWriteGuard, true);

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("rwlock guard already released")
    }
}

// ---------------------------------------------------------------------------
// OnceLock
// ---------------------------------------------------------------------------

/// Model-aware once-cell (API subset of `std::sync::OnceLock`).
pub struct OnceLock<T> {
    slot: StdAtomicU64,
    inner: std::sync::OnceLock<T>,
}

impl<T> Default for OnceLock<T> {
    fn default() -> Self {
        OnceLock::new()
    }
}

impl<T> OnceLock<T> {
    pub const fn new() -> Self {
        OnceLock {
            slot: StdAtomicU64::new(0),
            inner: std::sync::OnceLock::new(),
        }
    }

    fn obj_id(&self, st: &mut super::RunState, rt: &Runtime) -> usize {
        reg_once(st, &self.slot, rt.epoch)
    }

    pub fn get(&self) -> Option<&T> {
        if let Some((rt, tid)) = cur() {
            sched(&rt, tid, |_| Op::Yield("once-get"));
            with_state(&rt, |st| {
                let obj = self.obj_id(st, &rt);
                exec_sync_clock(st, obj, tid);
            });
        }
        self.inner.get()
    }

    pub fn set(&self, value: T) -> Result<(), T> {
        match cur() {
            None => self.inner.set(value),
            Some((rt, tid)) => {
                let op = sched(&rt, tid, |st| Op::OnceInit {
                    obj: self.obj_id(st, &rt),
                });
                let Op::OnceInit { obj } = op else {
                    unreachable!()
                };
                let already = with_state(&rt, |st| {
                    let (_, ready) = once_status(st, obj);
                    if !ready {
                        once_begin(st, obj, tid);
                    }
                    ready
                });
                if already {
                    return Err(value);
                }
                let r = self.inner.set(value);
                with_state(&rt, |st| once_complete(st, obj, tid));
                r
            }
        }
    }

    pub fn get_or_init<F: FnOnce() -> T>(&self, f: F) -> &T {
        match cur() {
            None => self.inner.get_or_init(f),
            Some((rt, tid)) => {
                let op = sched(&rt, tid, |st| Op::OnceInit {
                    obj: self.obj_id(st, &rt),
                });
                let Op::OnceInit { obj } = op else {
                    unreachable!()
                };
                let ready = with_state(&rt, |st| {
                    let (_, ready) = once_status(st, obj);
                    if ready {
                        exec_sync_clock(st, obj, tid);
                    } else {
                        once_begin(st, obj, tid);
                    }
                    ready
                });
                if ready {
                    return self.inner.get().expect("once marked ready without a value");
                }
                let v = f();
                let _ = self.inner.set(v);
                with_state(&rt, |st| once_complete(st, obj, tid));
                self.inner.get().expect("once value just installed")
            }
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for OnceLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnceLock").finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

macro_rules! model_atomic {
    ($name:ident, $std:ident, $ty:ty) => {
        /// Model-aware atomic. All operations are sequentially consistent
        /// in the model regardless of the requested `Ordering`.
        #[derive(Default)]
        pub struct $name {
            slot: StdAtomicU64,
            inner: std::sync::atomic::$std,
        }

        impl $name {
            pub const fn new(v: $ty) -> Self {
                $name {
                    slot: StdAtomicU64::new(0),
                    inner: std::sync::atomic::$std::new(v),
                }
            }

            fn hit(&self, label: &'static str) {
                if let Some((rt, tid)) = cur() {
                    let op = sched(&rt, tid, |st| Op::AtomicOp {
                        obj: reg_atomic(st, &self.slot, rt.epoch),
                        label,
                    });
                    let Op::AtomicOp { obj, .. } = op else {
                        unreachable!()
                    };
                    with_state(&rt, |st| exec_sync_clock(st, obj, tid));
                }
            }

            pub fn load(&self, _o: Ordering) -> $ty {
                self.hit("load");
                self.inner.load(Ordering::SeqCst)
            }

            pub fn store(&self, v: $ty, _o: Ordering) {
                self.hit("store");
                self.inner.store(v, Ordering::SeqCst)
            }

            pub fn swap(&self, v: $ty, _o: Ordering) -> $ty {
                self.hit("swap");
                self.inner.swap(v, Ordering::SeqCst)
            }

            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                _s: Ordering,
                _f: Ordering,
            ) -> Result<$ty, $ty> {
                self.hit("cas");
                self.inner
                    .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
            }

            pub fn compare_exchange_weak(
                &self,
                current: $ty,
                new: $ty,
                _s: Ordering,
                _f: Ordering,
            ) -> Result<$ty, $ty> {
                // Never spuriously fails in the model: spurious failure adds
                // schedules without adding reachable states.
                self.compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
            }

            pub fn into_inner(self) -> $ty {
                self.inner.into_inner()
            }

            pub fn get_mut(&mut self) -> &mut $ty {
                self.inner.get_mut()
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}({:?})", stringify!($name), self.inner)
            }
        }
    };
}

macro_rules! model_atomic_int {
    ($name:ident, $std:ident, $ty:ty) => {
        model_atomic!($name, $std, $ty);

        impl $name {
            pub fn fetch_add(&self, v: $ty, _o: Ordering) -> $ty {
                self.hit("fetch_add");
                self.inner.fetch_add(v, Ordering::SeqCst)
            }

            pub fn fetch_sub(&self, v: $ty, _o: Ordering) -> $ty {
                self.hit("fetch_sub");
                self.inner.fetch_sub(v, Ordering::SeqCst)
            }

            pub fn fetch_or(&self, v: $ty, _o: Ordering) -> $ty {
                self.hit("fetch_or");
                self.inner.fetch_or(v, Ordering::SeqCst)
            }

            pub fn fetch_and(&self, v: $ty, _o: Ordering) -> $ty {
                self.hit("fetch_and");
                self.inner.fetch_and(v, Ordering::SeqCst)
            }

            pub fn fetch_max(&self, v: $ty, _o: Ordering) -> $ty {
                self.hit("fetch_max");
                self.inner.fetch_max(v, Ordering::SeqCst)
            }

            pub fn fetch_min(&self, v: $ty, _o: Ordering) -> $ty {
                self.hit("fetch_min");
                self.inner.fetch_min(v, Ordering::SeqCst)
            }
        }
    };
}

model_atomic!(AtomicBool, AtomicBool, bool);
model_atomic_int!(AtomicU32, AtomicU32, u32);
model_atomic_int!(AtomicU64, AtomicU64, u64);
model_atomic_int!(AtomicUsize, AtomicUsize, usize);

impl AtomicBool {
    pub fn fetch_or(&self, v: bool, _o: Ordering) -> bool {
        self.hit("fetch_or");
        self.inner.fetch_or(v, Ordering::SeqCst)
    }

    pub fn fetch_and(&self, v: bool, _o: Ordering) -> bool {
        self.hit("fetch_and");
        self.inner.fetch_and(v, Ordering::SeqCst)
    }
}

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

enum HandleInner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        rt: Arc<Runtime>,
        tid: usize,
        slot: Arc<StdMutex<Option<T>>>,
    },
}

/// Model-aware join handle (API subset of `std::thread::JoinHandle`).
pub struct JoinHandle<T>(HandleInner<T>);

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle").finish_non_exhaustive()
    }
}

impl<T> JoinHandle<T> {
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            HandleInner::Std(h) => h.join(),
            HandleInner::Model { rt, tid, slot } => {
                let (rt2, me) = cur().expect("model JoinHandle joined outside its model run");
                debug_assert!(Arc::ptr_eq(&rt, &rt2), "join handle crossed model runs");
                sched(&rt2, me, |_| Op::Join { target: tid });
                with_state(&rt2, |st| join_thread_clock(st, me, tid));
                let v = slot
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .take()
                    .expect("joined model thread produced no value");
                Ok(v)
            }
        }
    }

    pub fn is_finished(&self) -> bool {
        match &self.0 {
            HandleInner::Std(h) => h.is_finished(),
            HandleInner::Model { rt, tid, .. } => {
                if let Some((rt2, me)) = cur() {
                    debug_assert!(Arc::ptr_eq(rt, &rt2));
                    sched(&rt2, me, |_| Op::Yield("is_finished"));
                }
                with_state(rt, |st| thread_finished(st, *tid))
            }
        }
    }
}

/// Spawn a thread. Inside a model run this registers a model thread whose
/// every sync op is a scheduling point; outside, it is `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match cur() {
        None => JoinHandle(HandleInner::Std(std::thread::spawn(f))),
        Some((rt, parent)) => {
            let (tid, rx) = register_thread(&rt, parent);
            let slot: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
            let slot2 = Arc::clone(&slot);
            let rt2 = Arc::clone(&rt);
            let handle = std::thread::Builder::new()
                .name(format!("model-t{tid}"))
                .spawn(move || {
                    install_ctx(Arc::clone(&rt2), tid, rx);
                    await_start();
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                    match r {
                        Ok(v) => {
                            *slot2.lock().unwrap_or_else(PoisonError::into_inner) = Some(v);
                            finish_child(&rt2, tid);
                        }
                        Err(p) => child_panicked(&rt2, tid, p),
                    }
                    super::clear_ctx();
                })
                .expect("failed to spawn model OS thread");
            record_handle(&rt, handle);
            // The spawned thread becomes visible at the parent's next
            // scheduling point; make the spawn itself one so the child can
            // run before anything the parent does next.
            sched(&rt, parent, |_| Op::Yield("spawn"));
            JoinHandle(HandleInner::Model { rt, tid, slot })
        }
    }
}

/// Named-thread builder (API subset of `std::thread::Builder`). Inside a
/// model run the name is cosmetic — model threads are identified by tid.
#[derive(Default)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    pub fn new() -> Self {
        Builder { name: None }
    }

    pub fn name(mut self, name: String) -> Self {
        self.name = Some(name);
        self
    }

    pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match cur() {
            None => {
                let mut b = std::thread::Builder::new();
                if let Some(n) = self.name {
                    b = b.name(n);
                }
                b.spawn(f).map(|h| JoinHandle(HandleInner::Std(h)))
            }
            Some(_) => Ok(spawn(f)),
        }
    }
}

/// Yield: a no-op scheduling point inside a model run.
pub fn yield_now() {
    match cur() {
        None => std::thread::yield_now(),
        Some((rt, tid)) => {
            sched(&rt, tid, |_| Op::Yield("yield"));
        }
    }
}

/// Sleep: inside a model run, time does not pass — this is just a
/// scheduling point.
pub fn sleep(dur: Duration) {
    match cur() {
        None => std::thread::sleep(dur),
        Some((rt, tid)) => {
            sched(&rt, tid, |_| Op::Yield("sleep"));
        }
    }
}
