//! # ultravc-bench
//!
//! Benchmark harnesses that regenerate **every table and figure** of the
//! paper, plus the ablations DESIGN.md commits to. Each harness is a
//! binary (`cargo run -p ultravc-bench --release --bin <name>`):
//!
//! | binary             | regenerates                                        |
//! |--------------------|----------------------------------------------------|
//! | `table1`           | Table I — original vs improved runtimes/speedups   |
//! | `fig1`             | Figure 1a (distributions) + 1b (workflow shares)   |
//! | `fig2`             | Figure 2 — per-thread trace timeline, imbalance    |
//! | `fig3`             | Figure 3 — SNV-sharing upset table                 |
//! | `cache_miss`       | discussion claim D-1 — miss rates                  |
//! | `approx_accuracy`  | D-2 — approximation error vs depth                 |
//! | `double_filter`    | D-3 — script-mode filtering inconsistency          |
//! | `ablation_delta`   | A-1 — δ margin sweep                               |
//! | `ablation_depth_gate` | A-2 — min-depth gate sweep                      |
//! | `ablation_schedule`   | A-3 — loop-schedule comparison                  |
//!
//! Workload sizes are scaled so every harness finishes in seconds to
//! minutes on a laptop (the paper's full runs took up to 415 CPU-hours);
//! the depth *ratios* and decision structure are preserved, which is what
//! the result shapes depend on. Scale knobs are environment variables
//! (`ULTRAVC_SCALE`, `ULTRAVC_GENOME`, `ULTRAVC_THREADS`) so bigger runs
//! are one shell line away.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

/// A simulated depth-`d` pileup column at mixed Phred 20-40, as sorted
/// `(error probability, multiplicity)` quality bins — the shared workload
/// of the binned-kernel bench harnesses (`bench_binned` gate binary and
/// the criterion microbench), kept in one place so both always measure
/// the same columns.
pub fn phred_bins(depth: usize, seed: u64) -> Vec<(f64, u32)> {
    let mut rng = ultravc_stats::rng::Rng::new(seed);
    let mut counts = [0u32; 64];
    for _ in 0..depth {
        counts[rng.range_u64(20, 40) as usize] += 1;
    }
    let mut bins: Vec<(f64, u32)> = counts
        .iter()
        .enumerate()
        .filter(|(_, &m)| m > 0)
        .map(|(q, &m)| (10f64.powf(-(q as f64) / 10.0), m))
        .collect();
    bins.sort_by(|a, b| a.0.total_cmp(&b.0));
    bins
}

/// Read an `f64` knob from the environment with a default.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Read a `usize` knob from the environment with a default.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Human-format a duration compactly (µs/ms/s as appropriate).
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s < 1e-3 {
        format!("{:.0}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else if s < 120.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.1}m", s / 60.0)
    }
}

/// Human-format a byte count.
pub fn fmt_bytes(n: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut v = n as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{n}B")
    } else {
        format!("{v:.1}{}", UNITS[unit])
    }
}

/// Human-format a depth value ("30,000x").
pub fn fmt_depth(depth: f64) -> String {
    let d = depth.round() as u64;
    let s = d.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out.push('x');
    out
}

/// Print a horizontal rule sized to a header line.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(50)), "50µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.0ms");
        assert_eq!(fmt_duration(Duration::from_secs(3)), "3.00s");
        assert_eq!(fmt_duration(Duration::from_secs(180)), "3.0m");
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.0KB");
        assert_eq!(fmt_bytes(5 * 1024 * 1024), "5.0MB");
    }

    #[test]
    fn depth_formatting() {
        assert_eq!(fmt_depth(1_000.0), "1,000x");
        assert_eq!(fmt_depth(1_000_000.0), "1,000,000x");
        assert_eq!(fmt_depth(10.0), "10x");
    }

    #[test]
    fn env_knobs_default() {
        assert_eq!(env_f64("ULTRAVC_NOPE_XYZ", 1.5), 1.5);
        assert_eq!(env_usize("ULTRAVC_NOPE_XYZ", 7), 7);
    }
}
