//! **D-2** — accuracy of the Poisson approximation versus depth.
//!
//! The paper's discussion: "the error in the Poisson approximation
//! vanishes asymptotically as d increases", "the approximation is more
//! accurate when the error probabilities p_i are higher", and "for input
//! data with low read-depth this heuristic is actually ill-suited" — the
//! justification for the depth ≥ 100 gate.
//!
//! For each depth, this harness draws realistic quality columns and
//! reports: the worst tail error `max_K |p̂ − p|`, the Le Cam bound, and
//! the number of **unsafe skips** — K where the screen would skip
//! (`p̂ ≥ ε + δ`) but the exact p-value is significant (`p < ε`). Unsafe
//! skips are what the δ margin and the depth gate exist to prevent.

use ultravc_bench::rule;
use ultravc_stats::approx::poisson_tail;
use ultravc_stats::le_cam_bound;
use ultravc_stats::poisson_binomial::PoissonBinomial;
use ultravc_stats::rng::Rng;

fn main() {
    let eps = 0.05;
    let delta = 0.01;
    println!(
        "D-2 Poisson approximation accuracy — ε = {eps}, δ = {delta}, \
         HiSeq-like (Q20–40) and degraded (Q15–30) qualities\n"
    );
    let header = format!(
        "{:>8} {:>12} {:>12} {:>12} {:>14} | {:>12} {:>14}",
        "depth",
        "λ (hiseq)",
        "max|p̂−p|",
        "Le Cam bnd",
        "unsafe skips",
        "max|p̂−p|ᵈᵉᵍ",
        "unsafe skipsᵈᵉᵍ"
    );
    println!("{header}");
    rule(header.len());

    for depth in [10usize, 30, 100, 300, 1_000, 3_000, 10_000, 30_000] {
        let (err_hi, lam_hi, unsafe_hi) = assess(depth, 20, 40, eps, delta, 0xD2 + depth as u64);
        let (err_lo, _, unsafe_lo) = assess(depth, 15, 30, eps, delta, 0x2D + depth as u64);
        let bound = {
            let probs = qualities(depth, 20, 40, 0xD2 + depth as u64);
            le_cam_bound(&probs)
        };
        println!(
            "{:>8} {:>12.4} {:>12.3e} {:>12.3e} {:>14} | {:>12.3e} {:>14}",
            depth, lam_hi, err_hi, bound, unsafe_hi, err_lo, unsafe_lo
        );
    }
    println!(
        "\nshape checks: the worst tail error stays an order of magnitude \
         below the paper's δ = 0.01 margin at every depth, and unsafe \
         skips are 0 from depth 100 up (the paper's gate)."
    );

    // Hodges–Le Cam asymptotics proper: hold λ = Σ pᵢ fixed and let depth
    // grow (pᵢ = λ/d each) — the regime where the approximation error
    // provably vanishes, Σ pᵢ² = λ²/d → 0.
    println!("\nfixed λ = 5, growing depth (the paper's 'error vanishes asymptotically'):");
    let header2 = format!("{:>8} {:>12} {:>12}", "depth", "max|p̂−p|", "Le Cam bnd");
    println!("{header2}");
    rule(header2.len());
    let mut last = f64::INFINITY;
    for depth in [10usize, 100, 1_000, 10_000, 100_000] {
        let probs = vec![5.0 / depth as f64; depth];
        let pb = PoissonBinomial::new(probs.clone()).unwrap();
        let mut worst: f64 = 0.0;
        for k in 1..=20usize {
            worst = worst.max((pb.tail_pruned(k) - poisson_tail(&probs, k)).abs());
        }
        println!(
            "{:>8} {:>12.3e} {:>12.3e}",
            depth,
            worst,
            le_cam_bound(&probs)
        );
        assert!(worst < last * 1.01, "error must shrink with depth");
        last = worst;
    }
}

fn qualities(depth: usize, q_lo: u64, q_hi: u64, seed: u64) -> Vec<f64> {
    let mut rng = Rng::new(seed);
    (0..depth)
        .map(|_| 10f64.powf(-(rng.range_u64(q_lo, q_hi) as f64) / 10.0))
        .collect()
}

/// Worst absolute tail error over the decision-relevant K range, plus the
/// count of unsafe skips.
fn assess(
    depth: usize,
    q_lo: u64,
    q_hi: u64,
    eps: f64,
    delta: f64,
    seed: u64,
) -> (f64, f64, usize) {
    let probs = qualities(depth, q_lo, q_hi, seed);
    let pb = PoissonBinomial::new(probs.clone()).unwrap();
    let lambda = pb.mean();
    let k_max = ((lambda + 8.0 * (lambda.sqrt() + 1.0)).ceil() as usize).min(depth);
    let mut worst: f64 = 0.0;
    let mut unsafe_skips = 0usize;
    for k in 1..=k_max.max(3) {
        let exact = pb.tail_pruned(k);
        let approx = poisson_tail(&probs, k);
        worst = worst.max((exact - approx).abs());
        if approx >= eps + delta && exact < eps {
            unsafe_skips += 1;
        }
    }
    (worst, lambda, unsafe_skips)
}
