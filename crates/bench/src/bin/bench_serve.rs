//! Serving-layer latency under concurrent load: p50/p99 per-request
//! wall time against an in-process `ultravc-serve` server holding one
//! ultra-deep fixture open.
//!
//! The measurement: N concurrent clients each issue R `GET /call`
//! requests over a rotating region list, once with the result cache
//! off (every request re-calls) and once with it on (steady state is
//! cache hits). Latency is the full client-side exchange — connect,
//! request, response streamed and parsed.
//!
//! Knobs (environment):
//!
//! * `ULTRAVC_SERVE_REQS` — requests per client (default 25; CI's
//!   quick mode uses less);
//! * `ULTRAVC_SERVE_CEIL` — p99 ceiling in milliseconds for the
//!   cache-on row at the highest concurrency. Enforced only on
//!   multi-core hosts (a single core serializes the worker pool and
//!   the clients against each other, so latency there measures the
//!   scheduler, not the server);
//! * `ULTRAVC_SERVE_MIX_CEIL` — p99 ceiling in milliseconds for
//!   *small* requests in the mixed whale+small workload (same ≥2-core
//!   enforcement rule);
//! * `ULTRAVC_BENCH_OUT` — output path (default `BENCH_serve.json`).
//!
//! Sanity gates this binary always enforces, every host:
//!
//! * a served response is bitwise identical to a fresh in-process
//!   driver run of the same span rendered through `write_vcf`;
//! * every request succeeds with status 200 (no 5xx, no partials on an
//!   unbounded budget);
//! * the server shuts down cleanly (report drained, no server errors).

use std::fs;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ultravc_bamlite::{BalFile, SourceTier};
use ultravc_bench::{env_f64, env_usize, rule};
use ultravc_core::config::CallerConfig;
use ultravc_core::driver::{CallDriver, ParallelMode, PrefetchMode};
use ultravc_core::RunBudget;
use ultravc_genome::fasta::{write_fasta, FastaRecord};
use ultravc_genome::reference::{GenomeParams, ReferenceGenome};
use ultravc_parfor::Schedule;
use ultravc_readsim::dataset::DatasetSpec;
use ultravc_serve::{http_get, SampleSpec, ServeConfig, Server};
use ultravc_vcf::{write_vcf, FilterParams};

const GENOME_LEN: usize = 2_000;
const DEPTH: f64 = 1_200.0;
const SEED: u64 = 71;

/// Latency percentiles over one (concurrency, cache) cell.
struct Row {
    concurrency: usize,
    cache: bool,
    requests: usize,
    p50_ms: f64,
    p99_ms: f64,
    mean_ms: f64,
    rps: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let reqs = env_usize("ULTRAVC_SERVE_REQS", 25);
    let ceil_ms = env_f64("ULTRAVC_SERVE_CEIL", 2_500.0);
    let out_path =
        std::env::var("ULTRAVC_BENCH_OUT").unwrap_or_else(|_| "BENCH_serve.json".to_string());
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Fixture on disk — the server runs its real open/mmap/advise path.
    let dir = std::env::temp_dir().join(format!("ultravc-bench-serve-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create fixture dir");
    let reference = ReferenceGenome::sars_cov_2_like(GenomeParams::with_length(GENOME_LEN), SEED);
    let ds = DatasetSpec::new("bench-serve", DEPTH, SEED)
        .with_variants(12, 0.005, 0.05)
        .simulate(&reference);
    let bal_path = dir.join("fixture.bal");
    ds.alignments.write_to(&bal_path).expect("write fixture");
    let mut fa = Vec::new();
    write_fasta(
        &mut fa,
        &[FastaRecord {
            name: reference.name.clone(),
            seq: reference.seq.clone(),
        }],
        70,
    )
    .expect("render fasta");
    let fa_path = dir.join("fixture.fa");
    fs::write(&fa_path, fa).expect("write fasta");
    let chrom = reference.name.clone();

    // Rotating region list: whole genome plus sliding windows, so the
    // cache-off row exercises varied spans and the cache-on row reaches
    // steady-state hits quickly.
    let windows: Vec<String> = std::iter::once(chrom.clone())
        .chain((0..7).map(|i| {
            let start = 1 + i * 250;
            format!("{chrom}:{start}-{}", (start + 499).min(GENOME_LEN))
        }))
        .collect();

    println!(
        "serve latency: {GENOME_LEN} bp × depth {DEPTH:.0}, {} regions, {reqs} req/client, {cores} core(s)\n",
        windows.len()
    );
    println!(
        "{:>12} {:>7} {:>10} {:>10} {:>10} {:>10}",
        "concurrency", "cache", "p50 ms", "p99 ms", "mean ms", "req/s"
    );
    rule(64);

    let mut rows: Vec<Row> = Vec::new();
    for &concurrency in &[2usize, 8] {
        for cache_on in [false, true] {
            let mut config = ServeConfig::new("127.0.0.1:0");
            config.samples.push(SampleSpec {
                name: "bench".to_string(),
                bal: bal_path.clone(),
                fasta: fa_path.clone(),
                fault: None,
            });
            config.workers = cores.clamp(2, 4);
            config.max_inflight = concurrency + 2;
            config.cache_capacity = if cache_on { 32 } else { 0 };
            // The matrix measures raw latency, not overload policy: lift
            // the cost budget so no request sheds (the mixed row below
            // exercises the cost-aware queue).
            config.cost_budget = 1 << 40;
            let server = Arc::new(Server::bind(config).expect("bind bench server"));

            // Sanity: a served whole-genome body is bitwise identical
            // to a fresh driver run (checked once per server boot).
            let served = http_get(
                server.local_addr(),
                &format!("/call?sample=bench&region={chrom}"),
                None,
            )
            .expect("sanity request");
            assert_eq!(served.status, 200, "{}", served.text());
            let driver = CallDriver {
                config: CallerConfig::improved(),
                filter: Some(FilterParams::default()),
                mode: ParallelMode::OpenMp {
                    n_threads: 1,
                    schedule: Schedule::Dynamic { chunk: 1 },
                    chunk_columns: 256,
                },
                trace: false,
                prefetch: PrefetchMode::Auto,
                budget: Some(RunBudget::unbounded()),
            };
            let bal = BalFile::open_with(&bal_path, SourceTier::Auto).expect("reopen fixture");
            let outcome = driver
                .run_region(&reference, &bal, 0..GENOME_LEN as u32)
                .expect("direct run");
            let expected = write_vcf(&reference.name, "ultravc-0.1", &outcome.records);
            assert_eq!(served.text(), expected, "served body != direct driver run");

            let wall = Instant::now();
            let handles: Vec<_> = (0..concurrency)
                .map(|client| {
                    let server = Arc::clone(&server);
                    let windows = windows.clone();
                    std::thread::spawn(move || {
                        let mut latencies = Vec::with_capacity(reqs);
                        for i in 0..reqs {
                            let region = &windows[(client + i) % windows.len()];
                            let url = format!("/call?sample=bench&region={region}");
                            let t = Instant::now();
                            let resp =
                                http_get(server.local_addr(), &url, None).expect("bench request");
                            latencies.push(t.elapsed().as_secs_f64() * 1_000.0);
                            assert_eq!(resp.status, 200, "client {client} req {i}");
                        }
                        latencies
                    })
                })
                .collect();
            let mut latencies: Vec<f64> = handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect();
            let wall = wall.elapsed().as_secs_f64();
            latencies.sort_by(f64::total_cmp);
            let n = latencies.len();
            let row = Row {
                concurrency,
                cache: cache_on,
                requests: n,
                p50_ms: percentile(&latencies, 50.0),
                p99_ms: percentile(&latencies, 99.0),
                mean_ms: latencies.iter().sum::<f64>() / n as f64,
                rps: n as f64 / wall,
            };
            println!(
                "{:>12} {:>7} {:>10.2} {:>10.2} {:>10.2} {:>10.1}",
                row.concurrency,
                if row.cache { "on" } else { "off" },
                row.p50_ms,
                row.p99_ms,
                row.mean_ms,
                row.rps
            );
            rows.push(row);

            let report = Arc::try_unwrap(server)
                .ok()
                .expect("all clients done")
                .shutdown();
            assert_eq!(report.server_errors, 0, "server errors during bench");
            assert_eq!(report.partial, 0, "unbounded requests must complete");
        }
    }
    rule(64);

    // Mixed whale+small workload: one client pins whole-genome calls
    // while small spans flow concurrently. The cost-aware queue plus
    // the worker pool must keep small-request latency bounded even
    // with a whale always in flight — this is the overload row the
    // serve-chaos CI job gates (`ULTRAVC_SERVE_MIX_CEIL`).
    let mix_ceil_ms = env_f64("ULTRAVC_SERVE_MIX_CEIL", 2_000.0);
    let total_cost = BalFile::open_with(&bal_path, SourceTier::Auto)
        .expect("probe fixture")
        .n_records();
    let mut config = ServeConfig::new("127.0.0.1:0");
    config.samples.push(SampleSpec {
        name: "bench".to_string(),
        bal: bal_path.clone(),
        fasta: fa_path.clone(),
        fault: None,
    });
    config.workers = cores.clamp(2, 4);
    config.max_inflight = 8;
    config.cache_capacity = 0;
    // 4 whole-file costs: whole-genome requests classify as whales
    // (> budget/8) and small spans as small, while the single whale
    // stream plus small traffic never sheds.
    config.cost_budget = total_cost * 4;
    let server = Arc::new(Server::bind(config).expect("bind mixed server"));

    let stop = Arc::new(AtomicBool::new(false));
    let whale = {
        let server = Arc::clone(&server);
        let stop = Arc::clone(&stop);
        let chrom = chrom.clone();
        std::thread::spawn(move || {
            let mut served = 0usize;
            while !stop.load(Ordering::SeqCst) {
                let resp = http_get(
                    server.local_addr(),
                    &format!("/call?sample=bench&region={chrom}&cache=off"),
                    None,
                )
                .expect("whale request");
                assert_eq!(resp.status, 200, "whale: {}", resp.text());
                served += 1;
            }
            served
        })
    };
    let small_windows: Vec<String> = (0..8)
        .map(|i| {
            let start = 1 + i * 150;
            format!("{chrom}:{start}-{}", start + 149)
        })
        .collect();
    let small_clients: Vec<_> = (0..2)
        .map(|client| {
            let server = Arc::clone(&server);
            let small_windows = small_windows.clone();
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(reqs);
                for i in 0..reqs {
                    let region = &small_windows[(client + i) % small_windows.len()];
                    let url = format!("/call?sample=bench&region={region}&cache=off");
                    let t = Instant::now();
                    let resp = http_get(server.local_addr(), &url, None).expect("small request");
                    latencies.push(t.elapsed().as_secs_f64() * 1_000.0);
                    assert_eq!(resp.status, 200, "small client {client} req {i}");
                }
                latencies
            })
        })
        .collect();
    let mut small_lat: Vec<f64> = small_clients
        .into_iter()
        .flat_map(|h| h.join().expect("small client"))
        .collect();
    stop.store(true, Ordering::SeqCst);
    let whales_served = whale.join().expect("whale client");
    small_lat.sort_by(f64::total_cmp);
    let mix_p50 = percentile(&small_lat, 50.0);
    let mix_p99 = percentile(&small_lat, 99.0);
    println!(
        "mixed workload: {} whole-genome whale(s) alongside {} small requests — \
         small p50 {mix_p50:.2} ms, p99 {mix_p99:.2} ms",
        whales_served,
        small_lat.len()
    );
    let report = Arc::try_unwrap(server)
        .ok()
        .expect("mixed clients done")
        .shutdown();
    assert_eq!(report.server_errors, 0, "server errors in mixed workload");
    assert_eq!(
        report.shed, 0,
        "mixed workload must not shed at this budget"
    );

    let mix_enforced = cores >= 2;
    if mix_enforced {
        assert!(
            mix_p99 <= mix_ceil_ms,
            "small-request p99 under a whale is {mix_p99:.2} ms, over the \
             {mix_ceil_ms:.0} ms ceiling (override with ULTRAVC_SERVE_MIX_CEIL)"
        );
        println!("gate: mixed small p99 = {mix_p99:.2} ms ≤ {mix_ceil_ms:.0} ms ✓");
    } else {
        println!(
            "gate: mixed skipped (1 core; small p99 = {mix_p99:.2} ms, ceiling {mix_ceil_ms:.0} ms)"
        );
    }
    rule(64);

    // Latency gate: cache-on p99 at the highest concurrency. Only
    // meaningful with real parallelism between the pool and clients.
    let gated = rows
        .iter()
        .filter(|r| r.cache)
        .max_by_key(|r| r.concurrency)
        .expect("cache-on row");
    let gate_enforced = cores >= 2;
    if gate_enforced {
        assert!(
            gated.p99_ms <= ceil_ms,
            "p99 at N={} is {:.2} ms, over the {ceil_ms:.0} ms ceiling \
             (override with ULTRAVC_SERVE_CEIL)",
            gated.concurrency,
            gated.p99_ms
        );
        println!(
            "\ngate: p99@N={} cache-on = {:.2} ms ≤ {ceil_ms:.0} ms ✓",
            gated.concurrency, gated.p99_ms
        );
    } else {
        println!(
            "\ngate: skipped (1 core; p99@N={} cache-on = {:.2} ms, ceiling {ceil_ms:.0} ms)",
            gated.concurrency, gated.p99_ms
        );
    }

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"fixture\": {{\"genome_len\": {GENOME_LEN}, \"depth\": {DEPTH}, \"seed\": {SEED}, \
         \"regions\": {}, \"requests_per_client\": {reqs}, \"cores\": {cores}}},\n",
        windows.len()
    ));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"concurrency\": {}, \"cache\": {}, \"requests\": {}, \"p50_ms\": {:.3}, \
             \"p99_ms\": {:.3}, \"mean_ms\": {:.3}, \"rps\": {:.1}}}{}\n",
            r.concurrency,
            r.cache,
            r.requests,
            r.p50_ms,
            r.p99_ms,
            r.mean_ms,
            r.rps,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"mixed\": {{\"whales\": {whales_served}, \"small_requests\": {}, \
         \"small_p50_ms\": {mix_p50:.3}, \"small_p99_ms\": {mix_p99:.3}, \
         \"ceil_ms\": {mix_ceil_ms}, \"enforced\": {mix_enforced}}},\n",
        small_lat.len()
    ));
    json.push_str(&format!(
        "  \"gate\": {{\"enforced\": {gate_enforced}, \"ceil_ms\": {ceil_ms}, \
         \"p99_ms\": {:.3}, \"concurrency\": {}}}\n",
        gated.p99_ms, gated.concurrency
    ));
    json.push_str("}\n");
    fs::write(&out_path, json).expect("write BENCH_serve.json");
    println!("wrote {out_path}");

    let _ = fs::remove_dir_all(&dir);
}
