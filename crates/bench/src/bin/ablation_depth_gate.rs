//! **A-2** — sweep of the shortcut's minimum-depth gate.
//!
//! The paper applies the approximation only at depth ≥ 100: below that,
//! the Poisson error bound is weak (unsafe skips become possible) and the
//! pruned DP's state fits in cache anyway, so there is nothing to win.
//! This ablation measures both effects: runtime and lost calls across
//! gate values, on a *mixed-depth* workload (half the genome shallow,
//! half deep — shallow data is where a gate of 0 can go wrong).

use std::time::Instant;
use ultravc_bench::{env_usize, fmt_duration, rule};
use ultravc_core::caller::call_variants;
use ultravc_core::config::{CallerConfig, ShortcutParams};
use ultravc_genome::reference::{GenomeParams, ReferenceGenome};
use ultravc_readsim::dataset::DatasetSpec;
use ultravc_readsim::QualityPreset;

fn main() {
    let genome_len = env_usize("ULTRAVC_GENOME", 800);
    let reference = ReferenceGenome::sars_cov_2_like(GenomeParams::with_length(genome_len), 66);
    // Two datasets of the same genome: shallow (60×) and deep (20,000×) —
    // the gate only matters on the shallow one.
    let shallow = DatasetSpec::new("shallow", 60.0, 0xA2)
        .with_variants(12, 0.05, 0.3)
        .with_quality(QualityPreset::Degraded)
        .simulate(&reference);
    let deep = DatasetSpec::new("deep", 20_000.0, 0xA2 + 1)
        .with_variants(12, 0.005, 0.05)
        .with_quality(QualityPreset::Degraded)
        .simulate(&reference);

    let exact_shallow =
        call_variants(&reference, &shallow.alignments, &CallerConfig::original()).unwrap();
    let exact_deep =
        call_variants(&reference, &deep.alignments, &CallerConfig::original()).unwrap();
    println!(
        "A-2 depth-gate sweep — shallow 60x ({} exact calls) + deep 20,000x \
         ({} exact calls)\n",
        exact_shallow.stats.calls, exact_deep.stats.calls
    );

    let header = format!(
        "{:>8} {:>14} {:>14} {:>12} {:>12}",
        "gate", "shallow time", "deep time", "lost(shal.)", "lost(deep)"
    );
    println!("{header}");
    rule(header.len());
    for &gate in &[0usize, 10, 25, 50, 100, 250, 1_000] {
        let config = CallerConfig {
            shortcut: Some(ShortcutParams {
                min_depth: gate,
                ..ShortcutParams::default()
            }),
            ..CallerConfig::default()
        };
        let t0 = Instant::now();
        let got_shallow = call_variants(&reference, &shallow.alignments, &config).unwrap();
        let t_shallow = t0.elapsed();
        let t1 = Instant::now();
        let got_deep = call_variants(&reference, &deep.alignments, &config).unwrap();
        let t_deep = t1.elapsed();
        println!(
            "{:>8} {:>14} {:>14} {:>12} {:>12}",
            gate,
            fmt_duration(t_shallow),
            fmt_duration(t_deep),
            exact_shallow.stats.calls - got_shallow.stats.calls.min(exact_shallow.stats.calls),
            exact_deep.stats.calls - got_deep.stats.calls.min(exact_deep.stats.calls),
        );
    }
    println!(
        "\nexpected shape: the gate's value is *insurance* — deep-data \
         runtime is unchanged for any gate ≤ a few hundred (deep columns \
         pass every gate), while shallow columns gain nothing from the \
         screen (the early-exit DP is already cheap there), so the paper's \
         100 costs nothing and removes the low-depth risk region."
    );
}
