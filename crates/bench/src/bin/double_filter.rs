//! **D-3** — the double-filtering bug of the original parallel script, and
//! its fix by the shared-memory driver.
//!
//! The original LoFreq parallel wrapper runs the dynamic VCF filter once
//! per worker process and then again on the merged output. Because the
//! filter's SNV-quality threshold is derived from the size of the call set
//! it is handed, the final output depends on how the input happened to be
//! partitioned. The paper's OpenMP port "move\[s\] all of the variant
//! calling to the same process", filtering once.
//!
//! This harness runs the same dataset through the sequential caller
//! (ground truth: one filter pass), the OpenMP driver, and the script
//! emulation at several job counts, and reports the divergences.

use ultravc_bench::{env_f64, env_usize, rule};
use ultravc_core::config::{Bonferroni, CallerConfig};
use ultravc_core::driver::CallDriver;
use ultravc_genome::reference::{GenomeParams, ReferenceGenome};
use ultravc_readsim::dataset::DatasetSpec;
use ultravc_readsim::QualityPreset;
use ultravc_vcf::VcfRecord;

fn main() {
    let genome_len = env_usize("ULTRAVC_GENOME", 2_000);
    let depth = env_f64("ULTRAVC_D3_DEPTH", 3_000.0);
    let reference = ReferenceGenome::sars_cov_2_like(GenomeParams::with_length(genome_len), 44);
    // Plenty of borderline-quality variants so the data-dependent
    // threshold has something to disagree about.
    let ds = DatasetSpec::new("d3", depth, 0xD3)
        .with_variants(40, 0.004, 0.05)
        .with_quality(QualityPreset::Degraded)
        .simulate(&reference);

    println!(
        "D-3 double-filtering bug — {genome_len} bp at {depth}x, 40 planted \
         variants incl. borderline frequencies\n"
    );
    // Call at the raw significance level so the call set spans the quality
    // range (with the default Bonferroni correction every record's QUAL is
    // ≥ 50 and no filter threshold can reach it — borderline records are
    // what the two pipelines disagree about).
    let config = CallerConfig {
        bonferroni: Bonferroni::None,
        ..CallerConfig::default()
    };
    let with_config = |mut d: CallDriver| {
        d.config = config.clone();
        d
    };

    let seq = with_config(CallDriver::sequential())
        .run(&reference, &ds.alignments)
        .unwrap();
    println!(
        "sequential (single filter pass): {} calls survive, QUAL threshold {:.2}",
        seq.records.len(),
        seq.filter_reports[0].qual_threshold
    );
    let omp = with_config(CallDriver::openmp(4))
        .run(&reference, &ds.alignments)
        .unwrap();
    println!(
        "openmp ×4   (single filter pass): {} calls survive — {}",
        omp.records.len(),
        if omp.records == seq.records {
            "identical to sequential ✓ (the fix)"
        } else {
            "DIFFERS from sequential (bug in the fix!)"
        }
    );
    assert_eq!(omp.records, seq.records);

    println!();
    let header = format!(
        "{:>8} {:>10} {:>12} {:>24} {:>16}",
        "jobs", "survive", "vs single", "stage-1 thresholds", "stage-2 thr"
    );
    println!("{header}");
    rule(header.len());
    let mut any_divergence = false;
    for n_jobs in [1usize, 2, 4, 8, 16] {
        let script = with_config(CallDriver::script(n_jobs))
            .run(&reference, &ds.alignments)
            .unwrap();
        let delta = diff_count(&script.records, &seq.records);
        any_divergence |= delta > 0;
        let stage1: Vec<String> = script.filter_reports[..script.filter_reports.len() - 1]
            .iter()
            .map(|r| format!("{:.1}", r.qual_threshold))
            .collect();
        let stage2 = script.filter_reports.last().unwrap().qual_threshold;
        println!(
            "{:>8} {:>10} {:>12} {:>24} {:>16.2}",
            n_jobs,
            script.records.len(),
            if delta == 0 {
                "same".to_string()
            } else {
                format!("{delta} differ")
            },
            stage1.join("/"),
            stage2
        );
    }
    println!(
        "\nthe paper's point: the script pipeline's output is a function of \
         the partitioning (thresholds above change with job count), while \
         the shared-memory pipeline always matches the sequential output."
    );
    if !any_divergence {
        println!(
            "(no record-level divergence at these parameters — thresholds \
             still shift with job count; increase ULTRAVC_D3_DEPTH or \
             variant count to push borderline records across them)"
        );
    }
}

/// Symmetric difference size of two record sets (by variant key).
fn diff_count(a: &[VcfRecord], b: &[VcfRecord]) -> usize {
    use std::collections::HashSet;
    let ka: HashSet<_> = a.iter().map(VcfRecord::key).collect();
    let kb: HashSet<_> = b.iter().map(VcfRecord::key).collect();
    ka.symmetric_difference(&kb).count()
}
