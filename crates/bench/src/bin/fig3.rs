//! **Figure 3** — the upset plot of low-frequency SNVs shared across the
//! five depth-of-coverage datasets.
//!
//! Paper: 134 (min) to 885 (max) SNVs per dataset; the 100,000× dataset
//! had the most unique SNVs (735); the 300,000× and 1,000,000× pair
//! shared the most for any pair; exactly 2 SNVs were shared by all five.
//!
//! This harness builds five samples over one reference with the same
//! sharing *structure* (a 2-variant core carried by every sample, a pool
//! shared by random subsets, per-sample private variants — scaled ~1/10),
//! sequences each at its tier depth, calls variants, and prints the upset
//! table of the resulting call sets. Intersections emerge from what the
//! caller *detects*, not from the truth sets directly: shallow tiers miss
//! their rarest variants exactly as the paper's shallow samples do.

use ultravc_bench::{env_f64, env_usize, rule};
use ultravc_core::analysis::UpsetTable;
use ultravc_core::driver::CallDriver;
use ultravc_genome::reference::{GenomeParams, ReferenceGenome};
use ultravc_readsim::dataset::{shared_truth_sets, DatasetSpec};
use ultravc_readsim::QualityPreset;

fn main() {
    let scale = env_f64("ULTRAVC_SCALE", 0.1);
    let genome_len = env_usize("ULTRAVC_GENOME", 3_000);
    let reference = ReferenceGenome::sars_cov_2_like(GenomeParams::with_length(genome_len), 33);

    // Sharing structure scaled ~1/10 from the paper's counts: a core of 2
    // high-frequency variants (the paper's all-five overlap), a pool of 60
    // at p=0.5 spanning each tier's detection frontier, 30 private each.
    let truths = shared_truth_sets(
        &reference,
        5,
        2,
        60,
        0.5,
        30,
        (0.0004, 0.04),
        (0.08, 0.25),
        0xF163,
    );

    let tiers: [(f64, &str); 5] = [
        (1_000.0, "1,000x"),
        (30_000.0, "30,000x"),
        (100_000.0, "100,000x"),
        (300_000.0, "300,000x"),
        (1_000_000.0, "1,000,000x"),
    ];
    println!(
        "Figure 3 reproduction — 5 samples over a {genome_len} bp reference, \
         scale {scale}\n"
    );

    let mut names = Vec::new();
    let mut call_sets = Vec::new();
    for ((nominal, label), truth) in tiers.iter().zip(truths) {
        let depth = (nominal * scale).max(10.0);
        let ds = DatasetSpec::new(*label, depth, 0xF163 + *nominal as u64)
            .with_truth(truth)
            .with_quality(QualityPreset::HiSeq)
            .simulate(&reference);
        let out = CallDriver::sequential()
            .run(&reference, &ds.alignments)
            .unwrap();
        println!(
            "  {label:>10}: {} SNVs called (of {} planted)",
            out.records.len(),
            ds.truth.len()
        );
        names.push(label.to_string());
        call_sets.push(out.records);
    }

    let upset = UpsetTable::from_call_sets(names.clone(), &call_sets);
    println!("\n{}", upset.render_text());

    println!("summary:");
    rule(60);
    let sizes = upset.set_sizes();
    let (min_i, _) = sizes.iter().enumerate().min_by_key(|(_, s)| **s).unwrap();
    let (max_i, _) = sizes.iter().enumerate().max_by_key(|(_, s)| **s).unwrap();
    println!(
        "  per-set totals: min {} ({}), max {} ({})  [paper: 134–885]",
        sizes[min_i], names[min_i], sizes[max_i], names[max_i]
    );
    println!(
        "  shared by all five: {}  [paper: 2]",
        upset.shared_by_all()
    );
    let uniques: Vec<usize> = (0..5).map(|i| upset.unique_to(i)).collect();
    let (uniq_i, uniq_n) = uniques.iter().enumerate().max_by_key(|(_, n)| **n).unwrap();
    println!(
        "  most unique SNVs: {} in {}  [paper: 735 in 100,000x]",
        uniq_n, names[uniq_i]
    );
    let m = upset.pairwise_matrix();
    let mut best = (0, 1, 0usize);
    for i in 0..5 {
        for j in i + 1..5 {
            if m[i][j] > best.2 {
                best = (i, j, m[i][j]);
            }
        }
    }
    println!(
        "  largest pairwise overlap: {} ∩ {} = {}  [paper: 300,000x ∩ 1,000,000x]",
        names[best.0], names[best.1], best.2
    );
}
