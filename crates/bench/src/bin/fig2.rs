//! **Figure 2** — the per-thread execution trace of the parallel caller.
//!
//! The paper's HPC-Toolkit screenshot shows: pink (probability
//! computation) dominating, teal (BAM iteration) substantial, light blue
//! (decompression) at the left, dark green (barrier) at the right — with
//! one straggler thread that picked up a high-cost column near the end and
//! serialized the run despite dynamic scheduling.
//!
//! This harness reproduces the scenario: a variant **hotspot in the last
//! tenth of the genome** (dense mismatch columns = expensive exact DPs),
//! an OpenMP-mode run with dynamic scheduling, and the trace rendered as
//! an ASCII timeline plus the imbalance metrics.

use ultravc_bench::{env_f64, env_usize, fmt_duration, rule};
use ultravc_core::config::CallerConfig;
use ultravc_core::driver::{CallDriver, ParallelMode, PrefetchMode};
use ultravc_genome::reference::{GenomeParams, ReferenceGenome};
use ultravc_genome::variant::TruthSet;
use ultravc_parfor::Schedule;
use ultravc_readsim::dataset::DatasetSpec;
use ultravc_readsim::QualityPreset;
use ultravc_stats::rng::Rng;

fn main() {
    let n_threads = env_usize("ULTRAVC_THREADS", 8);
    let genome_len = env_usize("ULTRAVC_GENOME", 2_000);
    let depth = env_f64("ULTRAVC_FIG2_DEPTH", 8_000.0);
    let reference = ReferenceGenome::sars_cov_2_like(GenomeParams::with_length(genome_len), 22);

    // Variant hotspot: 30 clustered variants in the last tenth — the
    // "partitions with high concentrations of variants near the end"
    // that the paper blames for the residual imbalance.
    let mut rng = Rng::new(0xF162);
    let mut truth = TruthSet::random_in_window(
        &reference,
        30,
        0.02,
        0.2,
        genome_len * 9 / 10..genome_len,
        &mut rng,
    );
    let background =
        TruthSet::random_in_window(&reference, 5, 0.02, 0.1, 100..genome_len * 8 / 10, &mut rng);
    truth.absorb(&background);

    let ds = DatasetSpec::new("fig2", depth, 0xF162)
        .with_truth(truth)
        .with_quality(QualityPreset::Degraded)
        .simulate(&reference);

    println!(
        "Figure 2 reproduction — {genome_len} bp at {depth}x, {n_threads} threads, \
         dynamic schedule, variant hotspot in the last 10%\n"
    );

    let driver = CallDriver {
        config: CallerConfig::improved(),
        filter: None,
        mode: ParallelMode::OpenMp {
            n_threads,
            schedule: Schedule::Dynamic { chunk: 1 },
            chunk_columns: (genome_len / (n_threads * 4)).max(8) as u32,
        },
        trace: true,
        prefetch: PrefetchMode::Auto,
        budget: Some(ultravc_core::RunBudget::unbounded()),
    };
    let out = driver.run(&reference, &ds.alignments).unwrap();
    let timeline = out.timeline.expect("trace was requested");
    let team = out.team.expect("parallel mode");

    println!("{}", timeline.render_ascii(100));
    let summary = timeline.summary();
    println!("category shares (of recorded busy time):");
    for c in &summary.categories {
        println!(
            "  {:>14} {:>9} {:>6.1}%",
            c.category.name(),
            fmt_duration(c.total),
            c.share * 100.0
        );
    }
    rule(46);
    println!(
        "wall {:>9}   imbalance(max/mean busy) {:.2}   straggler T{:02}",
        fmt_duration(out.wall),
        team.imbalance(),
        team.straggler()
    );
    println!(
        "barrier waste (Σ idle at join): {}",
        fmt_duration(team.barrier_waste())
    );
    println!(
        "\npaper's observation: even with dynamic scheduling, a high-cost \
         chunk near the end leaves one thread running while the rest wait \
         at the barrier — visible above as the lone P-row tail and its '='."
    );
}
