//! **Figure 1** — (a) the Poisson approximation to the Poisson-binomial
//! distribution; (b) the improved workflow's decision shares.
//!
//! `fig1 pmf` emits the CSV series behind Figure 1a: the exact
//! Poisson-binomial pmf (the paper's bars), the approximating Poisson pmf
//! (the red line), and both right-tail statistics, for a realistic deep
//! pileup column.
//!
//! `fig1 workflow` runs the Figure 1b decision workflow over a simulated
//! ultra-deep dataset and reports how columns flowed through it: skipped
//! by the `O(d)` screen, dismissed by the early-exit DP, fully computed,
//! called. Run with no argument to get both.

use ultravc_bench::{env_f64, env_usize, rule};
use ultravc_core::caller::call_variants;
use ultravc_core::config::CallerConfig;
use ultravc_genome::reference::{GenomeParams, ReferenceGenome};
use ultravc_readsim::dataset::DatasetSpec;
use ultravc_readsim::QualityPreset;
use ultravc_stats::poisson::Poisson;
use ultravc_stats::poisson_binomial::PoissonBinomial;
use ultravc_stats::rng::Rng;

fn main() {
    let mode = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "both".to_string());
    if mode == "pmf" || mode == "both" {
        pmf_series();
    }
    if mode == "workflow" || mode == "both" {
        if mode == "both" {
            println!();
        }
        workflow_shares();
    }
}

/// Figure 1a: exact pmf vs Poisson density over a mixed-quality column.
fn pmf_series() {
    let depth = env_usize("ULTRAVC_FIG1_DEPTH", 500);
    let mut rng = Rng::new(0xF161);
    // A deep column with realistic mixed Phred 20–40 qualities.
    let probs: Vec<f64> = (0..depth)
        .map(|_| 10f64.powf(-(rng.range_u64(20, 40) as f64) / 10.0))
        .collect();
    let pb = PoissonBinomial::new(probs.clone()).unwrap();
    let lambda = pb.mean();
    let poisson = Poisson::new(lambda).unwrap();
    let pmf = pb.pmf();

    println!("Figure 1a series — depth {depth}, λ = Σ pᵢ = {lambda:.4}");
    println!("k,poisson_binomial_pmf,poisson_pmf,pb_tail_P(X>=k),poisson_tail_P(X>=k)");
    let k_max = ((lambda + 6.0 * lambda.sqrt()).ceil() as usize).clamp(8, depth);
    for k in 0..=k_max {
        println!(
            "{k},{:.6e},{:.6e},{:.6e},{:.6e}",
            pmf[k],
            poisson.pmf(k as u64),
            pb.tail_pruned(k),
            poisson.sf(k as u64)
        );
    }
    let bound = ultravc_stats::le_cam_bound(&probs);
    println!("# Le Cam / Barbour–Hall total-variation bound: {bound:.3e}");
}

/// Figure 1b: decision-path shares over a simulated deep dataset.
fn workflow_shares() {
    let depth = env_f64("ULTRAVC_FIG1_WORKFLOW_DEPTH", 10_000.0);
    let genome_len = env_usize("ULTRAVC_GENOME", 600);
    let reference = ReferenceGenome::sars_cov_2_like(GenomeParams::with_length(genome_len), 11);
    let ds = DatasetSpec::new("fig1b", depth, 0xF1B)
        .with_variants(10, 0.01, 0.05)
        .with_quality(QualityPreset::Degraded)
        .simulate(&reference);

    let improved = call_variants(&reference, &ds.alignments, &CallerConfig::improved()).unwrap();
    let original = call_variants(&reference, &ds.alignments, &CallerConfig::original()).unwrap();

    let s = improved.stats;
    println!("Figure 1b workflow shares — genome {genome_len} bp at {depth}x (Degraded quality)");
    let header = format!("{:>28} {:>10} {:>8}", "decision path", "columns", "share");
    println!("{header}");
    rule(header.len());
    let pct = |n: u64| 100.0 * n as f64 / s.mismatch_columns.max(1) as f64;
    println!(
        "{:>28} {:>10} {:>7.1}%",
        "skipped by Poisson screen",
        s.skipped_by_approx,
        pct(s.skipped_by_approx)
    );
    println!(
        "{:>28} {:>10} {:>7.1}%",
        "early-exit DP bail",
        s.bailed_early,
        pct(s.bailed_early)
    );
    println!(
        "{:>28} {:>10} {:>7.1}%",
        "exact DP completed",
        s.exact_completed,
        pct(s.exact_completed)
    );
    println!(
        "{:>28} {:>10} {:>7.1}%",
        "→ of which called",
        s.calls,
        pct(s.calls)
    );
    println!(
        "\nmismatch columns: {} of {} covered columns",
        s.mismatch_columns, s.columns
    );
    println!(
        "safety check: improved calls = {} / original calls = {} — {}",
        improved.stats.calls,
        original.stats.calls,
        if improved.records == original.records {
            "identical (the paper's invariant)"
        } else {
            "DIFFERENT (invariant violated!)"
        }
    );
    assert_eq!(improved.records, original.records);
}
