//! **D-1** — the discussion-section cache claim: original LoFreq runs at
//! above a 70 % cache miss rate on deep inputs; the improved version stays
//! under 15 %, because bypassed exact computations no longer "repeatedly
//! iterate over an array that does not fit in the cache".
//!
//! Replays both callers' memory reference streams (line-granularity; see
//! `ultravc_core::cachemodel`) through a set-associative LRU model at a
//! sweep of depths, single-threaded and with four threads sharing the
//! cache (the paper: "we quickly begin to spill over our shared cache when
//! running in parallel \[for\] depth d > 1e5").

use ultravc_bench::{env_usize, rule};
use ultravc_cachesim::{simulate_shared, Cache, CacheConfig, CacheStats};
use ultravc_core::cachemodel::{binned_column_trace, improved_column_trace, original_column_trace};

fn main() {
    // Measured skip rates on deep data are >90 % (see the fig1 harness);
    // 1-in-25 fall-through is conservative.
    let fall_through_every = 25u64;
    let budget = env_usize("ULTRAVC_CACHE_BUDGET", 200_000_000);

    println!(
        "D-1 cache miss rates — 1 MiB 16-way LRU (Xeon L2-like), 64 B lines\n\
         (column count per point adapts to a {budget}-reference budget)\n"
    );
    let header = format!(
        "{:>10} {:>8} {:>14} {:>14} {:>14} {:>16} {:>16}",
        "depth",
        "cols",
        "orig (1 thr)",
        "impr (1 thr)",
        "binned (1 thr)",
        "orig (4 shared)",
        "impr (4 shared)"
    );
    println!("{header}");
    rule(header.len());

    for depth in [3_000usize, 10_000, 30_000, 100_000] {
        // λ-scale mismatch count for this depth.
        let k = (depth as f64 * 2.5e-3).ceil() as usize;
        // The original kernel's trace is ~d²/16 references per column;
        // adapt its column count so each cell stays within budget. The
        // improved kernel's trace is linear in d — a fixed 64 columns is
        // cheap and keeps its mix representative.
        let per_col = depth * depth / 16;
        let columns = (budget / per_col.max(1)).clamp(4, 64);
        let orig1 = run_single(depth, columns, true, fall_through_every, k);
        let impr1 = run_single(depth, 64, false, fall_through_every, k);
        let binned1 = run_binned(64, fall_through_every, k);
        let orig4 = run_shared(depth, columns, true, fall_through_every, k);
        let impr4 = run_shared(depth, 64, false, fall_through_every, k);
        println!(
            "{:>10} {:>8} {:>13.1}% {:>13.1}% {:>13.1}% {:>15.1}% {:>15.1}%",
            depth,
            columns,
            orig1.miss_rate() * 100.0,
            impr1.miss_rate() * 100.0,
            binned1.miss_rate() * 100.0,
            orig4.miss_rate() * 100.0,
            impr4.miss_rate() * 100.0,
        );
    }
    println!(
        "\npaper: original >70 %, improved <15 % on deep inputs, with the \
         spill appearing 'when running in parallel (depth d > 1e5)'. \
         Shape reproduced: the original crosses into thrashing exactly \
         when the threads' combined O(d) DP state outgrows the shared \
         cache, while the improved caller is flat in depth. (The improved \
         rate here is a compulsory-miss ceiling: a no-prefetch LRU model \
         charges every first touch of streamed data; hardware stream \
         prefetchers hide most of those, which is how the paper lands \
         below 15 %.) The binned column — the representation this \
         workspace actually ships — is flat in depth *by construction*: a \
         recycled ~3 KB histogram plus an O(#bins + K) DP working set, so \
         its misses are compulsory warm-up only."
    );
}

/// The shipped binned caller: depth enters only through K; the trace's
/// footprint is the recycled histogram pool + the grouped-trial DP state.
fn run_binned(columns: usize, fall_through_every: u64, k: usize) -> CacheStats {
    let mut cache = Cache::new(CacheConfig::xeon_l2());
    for col in 0..columns as u64 {
        for addr in binned_column_trace(40, k, col.is_multiple_of(fall_through_every), col, 2, 0) {
            cache.access(addr);
        }
    }
    cache.stats()
}

fn column_stream(
    depth: usize,
    original: bool,
    col: u64,
    fall_through_every: u64,
    k: usize,
    scratch: u64,
) -> Box<dyn Iterator<Item = u64>> {
    if original {
        original_column_trace(depth, col, scratch)
    } else {
        improved_column_trace(
            depth,
            k,
            col.is_multiple_of(fall_through_every),
            col,
            scratch,
        )
    }
}

fn run_single(
    depth: usize,
    columns: usize,
    original: bool,
    fall_through_every: u64,
    k: usize,
) -> CacheStats {
    let mut cache = Cache::new(CacheConfig::xeon_l2());
    for col in 0..columns as u64 {
        for addr in column_stream(depth, original, col, fall_through_every, k, 0) {
            cache.access(addr);
        }
    }
    cache.stats()
}

fn run_shared(
    depth: usize,
    columns: usize,
    original: bool,
    fall_through_every: u64,
    k: usize,
) -> CacheStats {
    let mut cache = Cache::new(CacheConfig::xeon_l2());
    let per_thread = (columns / 4).max(1) as u64;
    let streams: Vec<_> = (0..4u64)
        .map(|t| {
            let base = t * 1_000 + 1;
            (0..per_thread).flat_map(move |c| {
                column_stream(depth, original, base + c, fall_through_every, k, t)
            })
        })
        .collect();
    simulate_shared(&mut cache, streams, 64)
}
