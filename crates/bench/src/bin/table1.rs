//! **Table I** — execution times of the original and improved callers
//! across the paper's five depth tiers.
//!
//! Paper (Intel Xeon Gold 6138, real SARS-CoV-2 data):
//!
//! ```text
//! Input size  Avg. depth   Orig.    New     Speed-up
//! 58M         1,000x       52 s     51 s    1.0x
//! 237M        30,000x      58 m     26 m    2.6x
//! 935M        100,000x     14 h     4 h     3.3x
//! 2G          300,000x     55 h     12 h    4.6x
//! 25G         1,000,000x   415 h    111 h   3.7x   (depth capped at 1M)
//! ```
//!
//! This harness keeps the tier *ratios* (1 : 30 : 100 : 300 : 1000) and the
//! depth cap mechanism, scaled by `ULTRAVC_SCALE` (default 1/100) over an
//! `ULTRAVC_GENOME`-bp slice (default 400) so the whole ladder runs in
//! seconds. The invariant that made the paper's comparison meaningful is
//! asserted, not eyeballed: **identical variant counts** from both
//! versions in every tier.

use std::time::Instant;
use ultravc_bench::{env_f64, env_usize, fmt_bytes, fmt_depth, fmt_duration, rule};
use ultravc_core::caller::call_variants;
use ultravc_core::config::CallerConfig;
use ultravc_genome::reference::{GenomeParams, ReferenceGenome};
use ultravc_readsim::dataset::DatasetSpec;

fn main() {
    let scale = env_f64("ULTRAVC_SCALE", 0.1);
    let genome_len = env_usize("ULTRAVC_GENOME", 400);
    // The paper's 1M-read depth cap, scaled the same way: it sits between
    // the 300,000x and 1,000,000x tiers, so the deepest tier pays full
    // decode cost for columns the caller then truncates — the mechanism
    // behind Table I's speedup dip on the 25 GB file.
    let depth_cap = (1_000_000.0 * scale * 0.25).max(100.0) as usize;

    let reference = ReferenceGenome::sars_cov_2_like(GenomeParams::with_length(genome_len), 7);
    println!(
        "Table I reproduction — genome {} bp, scale {scale}, depth cap {depth_cap}",
        reference.len()
    );
    println!("paper tiers 1,000x…1,000,000x are scaled by {scale}; labels keep nominal depths\n");
    let header = format!(
        "{:>11} {:>12} {:>12} {:>10} {:>10} {:>9} {:>8} {:>7}",
        "Input size", "Avg. depth", "Reads", "Orig.", "New", "Speed-up", "Vars", "Equal?"
    );
    println!("{header}");
    rule(header.len());

    let tiers: [(f64, &str); 5] = [
        (1_000.0, "1,000x"),
        (30_000.0, "30,000x"),
        (100_000.0, "100,000x"),
        (300_000.0, "300,000x"),
        (1_000_000.0, "1,000,000x"),
    ];
    for (i, (nominal, label)) in tiers.iter().enumerate() {
        let depth = (nominal * scale).max(10.0);
        // Burden-preserving scaling: with depth scaled by 1/10, the
        // Degraded preset's ~10× error rate keeps each tier's per-column
        // mismatch burden λ = Σ pᵢ at the paper's level — λ is what the
        // exact DP's cost grows with, so scaling *it* preserves the
        // speedup shape (see DESIGN.md, Substitutions).
        let spec = DatasetSpec::new(*label, depth, 0xD47A + i as u64)
            .with_variants(8, 0.01, 0.05)
            .with_quality(ultravc_readsim::QualityPreset::Degraded);
        let ds = spec.simulate(&reference);
        let input_size = ds.alignments.source().len();

        let mut orig_cfg = CallerConfig::original();
        orig_cfg.pileup.max_depth = depth_cap;
        let mut new_cfg = CallerConfig::improved();
        new_cfg.pileup.max_depth = depth_cap;

        let t0 = Instant::now();
        let orig = call_variants(&reference, &ds.alignments, &orig_cfg).unwrap();
        let t_orig = t0.elapsed();
        let t1 = Instant::now();
        let new = call_variants(&reference, &ds.alignments, &new_cfg).unwrap();
        let t_new = t1.elapsed();

        let identical = orig.records == new.records;
        let speedup = t_orig.as_secs_f64() / t_new.as_secs_f64().max(1e-9);
        println!(
            "{:>11} {:>12} {:>12} {:>10} {:>10} {:>8.1}x {:>8} {:>7}",
            fmt_bytes(input_size),
            fmt_depth(*nominal),
            ds.alignments.n_records(),
            fmt_duration(t_orig),
            fmt_duration(t_new),
            speedup,
            new.stats.calls,
            if identical { "yes" } else { "NO!" }
        );
        assert!(
            identical,
            "tier {label}: the shortcut changed the call set — the paper's \
             safety invariant is violated"
        );
    }
    println!(
        "\nshape check: speedup ≈ 1x at the shallow tier, grows with depth \
         (paper: 1.0 / 2.6 / 3.3 / 4.6 / 3.7)."
    );
}
