//! **A-3** — loop-schedule comparison on the Figure 2 hotspot workload.
//!
//! The paper replaced the script's static partitioning with OpenMP dynamic
//! scheduling to reduce load imbalance, observed that a hotspot near the
//! end still strands one thread, and suggested "smaller partitions towards
//! the end" (= guided scheduling) as the refinement. This ablation
//! measures all of them on the same hotspot dataset.

use ultravc_bench::{env_f64, env_usize, fmt_duration, rule};
use ultravc_core::config::CallerConfig;
use ultravc_core::driver::{CallDriver, ParallelMode, PrefetchMode};
use ultravc_genome::reference::{GenomeParams, ReferenceGenome};
use ultravc_genome::variant::TruthSet;
use ultravc_parfor::Schedule;
use ultravc_readsim::dataset::DatasetSpec;
use ultravc_readsim::QualityPreset;
use ultravc_stats::rng::Rng;

fn main() {
    let n_threads = env_usize("ULTRAVC_THREADS", 8);
    let genome_len = env_usize("ULTRAVC_GENOME", 2_000);
    let depth = env_f64("ULTRAVC_A3_DEPTH", 8_000.0);
    let reference = ReferenceGenome::sars_cov_2_like(GenomeParams::with_length(genome_len), 77);
    let mut rng = Rng::new(0xA3);
    let truth = TruthSet::random_in_window(
        &reference,
        30,
        0.02,
        0.2,
        genome_len * 9 / 10..genome_len,
        &mut rng,
    );
    let ds = DatasetSpec::new("a3", depth, 0xA3)
        .with_truth(truth)
        .with_quality(QualityPreset::Degraded)
        .simulate(&reference);

    println!(
        "A-3 schedule ablation — {genome_len} bp at {depth}x, hotspot in the \
         last 10%, {n_threads} threads\n"
    );
    let header = format!(
        "{:>22} {:>10} {:>11} {:>14} {:>10}",
        "schedule", "wall", "imbalance", "barrier waste", "calls"
    );
    println!("{header}");
    rule(header.len());

    let chunk = (genome_len / (n_threads * 8)).max(4) as u32;
    let candidates: Vec<(String, ParallelMode)> = vec![
        (
            "static".to_string(),
            ParallelMode::OpenMp {
                n_threads,
                schedule: Schedule::Static,
                chunk_columns: chunk,
            },
        ),
        (
            "dynamic,1".to_string(),
            ParallelMode::OpenMp {
                n_threads,
                schedule: Schedule::Dynamic { chunk: 1 },
                chunk_columns: chunk,
            },
        ),
        (
            "dynamic,4".to_string(),
            ParallelMode::OpenMp {
                n_threads,
                schedule: Schedule::Dynamic { chunk: 4 },
                chunk_columns: chunk,
            },
        ),
        (
            "guided".to_string(),
            ParallelMode::OpenMp {
                n_threads,
                schedule: Schedule::Guided { min_chunk: 1 },
                chunk_columns: chunk,
            },
        ),
        (
            "script (1 part/job)".to_string(),
            ParallelMode::ScriptEmulation { n_jobs: n_threads },
        ),
    ];

    let mut reference_records: Option<usize> = None;
    for (name, mode) in candidates {
        let driver = CallDriver {
            config: CallerConfig::improved(),
            filter: None,
            mode,
            trace: false,
            prefetch: PrefetchMode::Auto,
            budget: Some(ultravc_core::RunBudget::unbounded()),
        };
        // Best-of-3 to tame scheduler noise.
        let mut best: Option<(std::time::Duration, f64, std::time::Duration, usize)> = None;
        for _ in 0..3 {
            let out = driver.run(&reference, &ds.alignments).unwrap();
            let team = out.team.expect("parallel mode");
            let entry = (
                out.wall,
                team.imbalance(),
                team.barrier_waste(),
                out.records.len(),
            );
            if best.map(|b| entry.0 < b.0).unwrap_or(true) {
                best = Some(entry);
            }
        }
        let (wall, imbalance, waste, n_records) = best.expect("ran three times");
        println!(
            "{:>22} {:>10} {:>11.2} {:>14} {:>10}",
            name,
            fmt_duration(wall),
            imbalance,
            fmt_duration(waste),
            n_records
        );
        match reference_records {
            None => reference_records = Some(n_records),
            Some(n) => assert_eq!(n, n_records, "schedules must not change the calls"),
        }
    }
    println!(
        "\nexpected shape: static (≈ the script's partitioning) suffers the \
         worst imbalance because one contiguous block holds the hotspot; \
         dynamic narrows it; guided's shrinking tail chunks narrow it \
         further — the paper's suggested refinement."
    );
}
