//! Ingest-path throughput: legacy per-record decode vs the arena batch
//! decode, plus an end-to-end OpenMP identity check.
//!
//! Two measurements:
//!
//! 1. **Decode throughput** on a depth-100k read stack (100k × 150 bp
//!    reads over a ~300-column window, Phred 20–40 plateau mix — the
//!    same spectrum shape as `bench_binned`'s columns): records/s and
//!    bases/s for
//!    * the legacy path (`BalReader::decode_block` → owned `Record`s:
//!      four heap allocations per record), and
//!    * the batch path (`BalReader::decode_batch` → one reusable arena:
//!      zero per-record allocations, qualities already binned).
//! 2. **End-to-end OpenMP wall clock** on a simulated Table-1-style
//!    scenario, batch vs legacy ingest, asserting the two runs are
//!    bitwise identical: same records, same decision-path counters (which
//!    count every tail completion and early bail).
//!
//! Prints both tables and emits `BENCH_ingest.json` (working directory;
//! override with `ULTRAVC_BENCH_OUT`); CI uploads the JSON as a workflow
//! artifact next to `BENCH_binned.json`.
//!
//! Acceptance gates this binary enforces:
//!
//! * batch decode ≥ 2× legacy records/s at depth 100k (override the
//!   floor with `ULTRAVC_INGEST_FLOOR`);
//! * batch-decoded records equal legacy-decoded records field for field;
//! * disk-backed batch decode (fresh `BalFile::open` per pass, mmap
//!   tier) within 1.5× of the in-memory batch wall time — i.e. paging
//!   payloads in on demand must not give back the arena decode win
//!   (override with `ULTRAVC_DISK_FLOOR`); the streaming tier is
//!   reported alongside, ungated;
//! * disk-decoded arenas bitwise equal to in-memory arenas, every tier;
//! * v3 (columnar, compressed) stores ≤ 0.67× of v2's bytes/base on the
//!   same Table-1 stack (`ULTRAVC_V3_RATIO_CEIL`), with per-stream
//!   raw→stored ratios reported and recorded in the JSON;
//! * v3 cold stream-tier ingest (fresh `open` + full batch decode) stays
//!   within `ULTRAVC_V3_COLD_CEIL` (default 1.0) of v2 — the byte
//!   savings must pay for the decompression CPU;
//! * supervised batch decode (an armed, untripped `RunBudget` attached,
//!   so every payload read goes through the retry/interrupt wrapper)
//!   within 3% of the unsupervised wall time
//!   (`ULTRAVC_SUPERVISOR_CEIL`, default 1.03) — robustness must ride
//!   along for free on the fault-free path;
//! * end-to-end OpenMP calls identical between the two ingest paths;
//! * stream-tier cold e2e (fresh `open` per run, one worker) with
//!   prefetch on ≥ 1.3× over prefetch off on a decode-bound noisy-qual
//!   workload (`ULTRAVC_PREFETCH_FLOOR`; enforced only on multi-core
//!   hosts — a single core cannot overlap — and skipped entirely when no
//!   writable disk is available), with calls bitwise identical and
//!   per-run block decode counts unchanged (decode-once preserved).

use std::sync::Arc;
use std::time::Instant;
use ultravc_bamlite::{
    BalFile, BalWriter, Flags, FormatVersion, Record, RecordBatch, SourceTier, WriterStats,
};
use ultravc_bench::{env_f64, env_usize, fmt_depth, rule};
use ultravc_core::config::CallerConfig;
use ultravc_core::driver::{CallDriver, PrefetchMode};
use ultravc_core::RunBudget;
use ultravc_genome::phred::Phred;
use ultravc_genome::reference::{GenomeParams, ReferenceGenome};
use ultravc_genome::sequence::Seq;
use ultravc_pileup::IngestMode;
use ultravc_readsim::dataset::DatasetSpec;
use ultravc_stats::rng::Rng;

/// Median-of-`reps` wall time of `f`, in seconds.
fn time_median(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// A file whose central columns reach `depth`: `depth` reads of
/// `read_len` bases starting uniformly in `[0, read_len]`, with the
/// plateau-shaped Phred 20–40 quality strings real Illumina data has
/// (runs of 8–48 bases at one score — the shape the RLE codec is built
/// around).
fn depth_stack(
    depth: usize,
    read_len: usize,
    seed: u64,
    version: FormatVersion,
) -> (BalFile, WriterStats) {
    let mut rng = Rng::new(seed);
    let mut rows: Vec<(u32, u64)> = (0..depth as u64)
        .map(|id| (rng.range_u64(0, read_len as u64 + 1) as u32, id))
        .collect();
    rows.sort();
    let bases: Vec<u8> = (0..read_len).map(|i| b"ACGT"[(i + 1) % 4]).collect();
    let seq = Seq::from_ascii(&bases).unwrap();
    let mut w = BalWriter::with_options(ultravc_bamlite::file::DEFAULT_BLOCK_CAPACITY, version);
    for (pos, id) in rows {
        let mut quals: Vec<Phred> = Vec::with_capacity(read_len);
        while quals.len() < read_len {
            let run = (rng.range_u64(8, 48) as usize).min(read_len - quals.len());
            let q = Phred::new(rng.range_u64(20, 40) as u8);
            quals.extend(std::iter::repeat_n(q, run));
        }
        let flags = if id % 2 == 0 {
            Flags::none()
        } else {
            Flags::REVERSE
        };
        let rec = Record::full_match(id, pos, 60, flags, seq.clone(), quals).unwrap();
        w.push(rec).unwrap();
    }
    w.finish_with_stats()
}

/// A decode-bound ultra-deep stack for the prefetch e2e, plus its
/// matching reference: every base's quality is drawn independently from
/// Phred 20–40 (RLE runs of ~1 — the expensive end of real noisy
/// Illumina tails, where block decode genuinely dominates), and every
/// read matches the reference exactly (clean columns, so the caller's
/// work is the cheap screen and ingest is the bottleneck prefetch
/// exists to hide).
fn noisy_match_stack(
    n_reads: usize,
    read_len: usize,
    genome_len: usize,
    seed: u64,
) -> (BalFile, ReferenceGenome) {
    assert!(genome_len > read_len);
    let mut rng = Rng::new(seed);
    let pattern = |p: usize| b"ACGT"[p % 4];
    let genome: Vec<u8> = (0..genome_len).map(pattern).collect();
    let reference = ReferenceGenome::from_seq("prefetch-e2e", Seq::from_ascii(&genome).unwrap());
    let span = (genome_len - read_len) as u64;
    let mut rows: Vec<(u32, u64)> = (0..n_reads as u64)
        .map(|id| (rng.range_u64(0, span + 1) as u32, id))
        .collect();
    rows.sort();
    let mut w = BalWriter::new();
    for (pos, id) in rows {
        let bases: Vec<u8> = (0..read_len).map(|i| pattern(pos as usize + i)).collect();
        let quals: Vec<Phred> = (0..read_len)
            .map(|_| Phred::new(rng.range_u64(20, 40) as u8))
            .collect();
        let flags = if id % 2 == 0 {
            Flags::none()
        } else {
            Flags::REVERSE
        };
        let rec = Record::full_match(id, pos, 60, flags, Seq::from_ascii(&bases).unwrap(), quals)
            .unwrap();
        w.push(rec).unwrap();
    }
    (w.finish(), reference)
}

struct DecodeRow {
    path: &'static str,
    seconds: f64,
    records_per_s: f64,
    bases_per_s: f64,
}

impl DecodeRow {
    fn new(path: &'static str, seconds: f64, n_records: u64, n_bases: u64) -> DecodeRow {
        DecodeRow {
            path,
            seconds,
            records_per_s: n_records as f64 / seconds,
            bases_per_s: n_bases as f64 / seconds,
        }
    }
}

fn main() {
    let reps = env_usize("ULTRAVC_BENCH_REPS", 5);
    let depth = env_usize("ULTRAVC_INGEST_DEPTH", 100_000);
    let read_len = env_usize("ULTRAVC_INGEST_READ_LEN", 150);
    let floor = env_f64("ULTRAVC_INGEST_FLOOR", 2.0);
    let out_path =
        std::env::var("ULTRAVC_BENCH_OUT").unwrap_or_else(|_| "BENCH_ingest.json".to_string());

    println!(
        "ingest decode throughput at depth {} ({depth} × {read_len} bp reads; median of {reps} runs)\n",
        fmt_depth(depth as f64),
    );
    let (file, v3_stats) = depth_stack(depth, read_len, 0x1A6E57, FormatVersion::V3);
    let n_records = file.n_records();
    let n_bases = n_records * read_len as u64;
    println!(
        "file: {} records, {} blocks, {} distinct qualities, v{}",
        n_records,
        file.n_blocks(),
        file.quality_dict().len(),
        file.version()
    );

    // Correctness before speed: the batch path must reproduce the legacy
    // records field for field.
    {
        let mut legacy_reader = file.reader();
        let mut batch_reader = file.reader();
        let mut batch = RecordBatch::new();
        for i in 0..file.n_blocks() {
            let legacy = legacy_reader.decode_block(i).unwrap();
            batch_reader.decode_batch(i, &mut batch).unwrap();
            assert_eq!(batch.len(), legacy.len(), "block {i} record count");
            for (view, rec) in batch.views().zip(&legacy) {
                assert_eq!(
                    &view.to_record(file.quality_dict()),
                    rec,
                    "block {i}: batch view diverged from legacy record"
                );
            }
        }
    }

    // Disk-backed correctness before disk speed: every tier's arenas
    // must be bitwise identical to the in-memory decode.
    let disk_path =
        std::env::temp_dir().join(format!("ultravc-bench-ingest-{}.bal", std::process::id()));
    file.write_to(&disk_path).expect("write bench BAL file");
    for tier in [SourceTier::Mmap, SourceTier::Stream] {
        let disk = BalFile::open_with(&disk_path, tier).unwrap();
        let mut mem_reader = file.reader();
        let mut disk_reader = disk.reader();
        let (mut a, mut b) = (RecordBatch::new(), RecordBatch::new());
        for i in 0..file.n_blocks() {
            mem_reader.decode_batch(i, &mut a).unwrap();
            disk_reader.decode_batch(i, &mut b).unwrap();
            assert_eq!(a, b, "{tier:?} block {i}: disk arena diverged from memory");
        }
    }

    let legacy_s = time_median(reps, || {
        let mut reader = file.reader();
        for i in 0..file.n_blocks() {
            std::hint::black_box(reader.decode_block(i).unwrap());
        }
    });
    let batch_s = time_median(reps, || {
        let mut reader = file.reader();
        let mut batch = RecordBatch::new();
        for i in 0..file.n_blocks() {
            reader.decode_batch(i, &mut batch).unwrap();
            std::hint::black_box(&batch);
        }
    });
    // Two disk measurements per tier:
    // * cold — a fresh `open` per pass, so index parse and payload
    //   fault-in/read are inside the timing (what a one-shot run pays);
    // * warm — one shared open, decode per pass (steady state once the
    //   page cache holds the working set; this is the gated row).
    let disk_cold = |tier: SourceTier| {
        time_median(reps, || {
            let disk = BalFile::open_with(&disk_path, tier).unwrap();
            let mut reader = disk.reader();
            let mut batch = RecordBatch::new();
            for i in 0..disk.n_blocks() {
                reader.decode_batch(i, &mut batch).unwrap();
                std::hint::black_box(&batch);
            }
        })
    };
    let disk_warm = |tier: SourceTier| {
        let disk = BalFile::open_with(&disk_path, tier).unwrap();
        time_median(reps, || {
            let mut reader = disk.reader();
            let mut batch = RecordBatch::new();
            for i in 0..disk.n_blocks() {
                reader.decode_batch(i, &mut batch).unwrap();
                std::hint::black_box(&batch);
            }
        })
    };
    let mmap_cold_s = disk_cold(SourceTier::Mmap);
    let mmap_s = disk_warm(SourceTier::Mmap);
    let stream_cold_s = disk_cold(SourceTier::Stream);
    let stream_s = disk_warm(SourceTier::Stream);
    let rows = [
        DecodeRow::new("legacy", legacy_s, n_records, n_bases),
        DecodeRow::new("batch", batch_s, n_records, n_bases),
        DecodeRow::new("batch-mmap", mmap_s, n_records, n_bases),
        DecodeRow::new("batch-mmap-cold", mmap_cold_s, n_records, n_bases),
        DecodeRow::new("batch-stream", stream_s, n_records, n_bases),
        DecodeRow::new("batch-stream-cold", stream_cold_s, n_records, n_bases),
    ];
    let header = format!(
        "{:>8} {:>12} {:>16} {:>16}",
        "path", "decode", "records/s", "bases/s"
    );
    println!("\n{header}");
    rule(header.len());
    for r in &rows {
        println!(
            "{:>8} {:>11.1}ms {:>16.3e} {:>16.3e}",
            r.path,
            r.seconds * 1e3,
            r.records_per_s,
            r.bases_per_s
        );
    }
    let speedup = legacy_s / batch_s;
    println!(
        "\nbatch decode speedup at depth {}: {speedup:.2}× (acceptance floor: {floor}×)",
        fmt_depth(depth as f64)
    );
    assert!(
        speedup >= floor,
        "batch decode must be ≥{floor}× over legacy at depth {depth} (got {speedup:.2}×)"
    );
    let disk_floor = env_f64("ULTRAVC_DISK_FLOOR", 1.5);
    let mmap_slowdown = mmap_s / batch_s;
    let stream_slowdown = stream_s / batch_s;
    println!(
        "disk-backed batch decode vs in-memory: mmap {mmap_slowdown:.2}× \
         (cold {:.2}×), stream {stream_slowdown:.2}× (cold {:.2}×) \
         — mmap acceptance ceiling: {disk_floor}×",
        mmap_cold_s / batch_s,
        stream_cold_s / batch_s,
    );
    assert!(
        mmap_slowdown <= disk_floor,
        "mmap-backed batch decode must stay within {disk_floor}× of in-memory at depth {depth} \
         (got {mmap_slowdown:.2}×)"
    );

    // --- Format comparison: v3 columnar vs v2 interleaved ------------
    // The same Table-1 stack encoded as v2, against the v3 file already
    // measured above. Two gates:
    // * stored bytes/base: v3 ≤ ULTRAVC_V3_RATIO_CEIL × v2 (default
    //   0.67) — the compression claim of the columnar format;
    // * cold stream-tier ingest (fresh `open` + full batch decode, the
    //   one-shot run shape): v3 wall ≤ ULTRAVC_V3_COLD_CEIL × v2 —
    //   moving fewer bytes must pay for the decompression CPU. Measured
    //   as back-to-back pairs, median of per-pair ratios (same
    //   discipline as the supervisor gate).
    let (v2_file, v2_stats) = depth_stack(depth, read_len, 0x1A6E57, FormatVersion::V2);
    assert_eq!(v2_stats.bases, v3_stats.bases);
    assert_eq!(v2_file.n_blocks(), file.n_blocks());
    for (a, b) in v2_file.index().iter().zip(file.index()) {
        assert_eq!(
            (a.min_pos, a.max_end, a.n_records),
            (b.min_pos, b.max_end, b.n_records),
            "index extents must be format-independent"
        );
    }
    let v2_bytes = v2_file.as_bytes().expect("in-memory").len();
    let v3_bytes = file.as_bytes().expect("in-memory").len();
    let v2_bpb = v2_bytes as f64 / n_bases as f64;
    let v3_bpb = v3_bytes as f64 / n_bases as f64;
    let bpb_ratio = v3_bpb / v2_bpb;
    let ratio_ceil = env_f64("ULTRAVC_V3_RATIO_CEIL", 0.67);
    println!("\nv2 vs v3 stored size on the same stack:");
    println!(
        "  v2 {v2_bytes} B ({v2_bpb:.3} B/base), v3 {v3_bytes} B ({v3_bpb:.3} B/base) \
         → {bpb_ratio:.3}× (acceptance ceiling: {ratio_ceil}×)"
    );
    for (name, s) in WriterStats::STREAM_NAMES.iter().zip(&v3_stats.streams) {
        println!(
            "  v3 {name:>5} stream: {:>9} B raw → {:>9} B stored ({:.3}×)",
            s.raw,
            s.compressed,
            s.compressed as f64 / (s.raw as f64).max(1.0)
        );
    }
    assert!(
        bpb_ratio <= ratio_ceil,
        "v3 must store ≤{ratio_ceil}× of v2's bytes/base on the Table-1 stack (got {bpb_ratio:.3}×)"
    );
    let v2_disk_path = std::env::temp_dir().join(format!(
        "ultravc-bench-ingest-v2-{}.bal",
        std::process::id()
    ));
    v2_file
        .write_to(&v2_disk_path)
        .expect("write v2 bench file");
    let cold_once = |path: &std::path::Path| {
        let t = Instant::now();
        let disk = BalFile::open_with(path, SourceTier::Stream).unwrap();
        let mut reader = disk.reader();
        let mut batch = RecordBatch::new();
        for i in 0..disk.n_blocks() {
            reader.decode_batch(i, &mut batch).unwrap();
            std::hint::black_box(&batch);
        }
        t.elapsed().as_secs_f64()
    };
    let (mut v2_cold_s, mut v3_cold_s) = (f64::INFINITY, f64::INFINITY);
    let mut cold_ratios: Vec<f64> = (0..(3 * reps).max(15))
        .map(|_| {
            let a = cold_once(&v2_disk_path);
            let b = cold_once(&disk_path);
            v2_cold_s = v2_cold_s.min(a);
            v3_cold_s = v3_cold_s.min(b);
            b / a
        })
        .collect();
    cold_ratios.sort_by(f64::total_cmp);
    let cold_ratio = cold_ratios[cold_ratios.len() / 2];
    let cold_ceil = env_f64("ULTRAVC_V3_COLD_CEIL", 1.0);
    println!(
        "  cold stream-tier ingest: v2 {:.1}ms, v3 {:.1}ms, median paired ratio \
         {cold_ratio:.3}× (acceptance ceiling: {cold_ceil}×)",
        v2_cold_s * 1e3,
        v3_cold_s * 1e3,
    );
    assert!(
        cold_ratio <= cold_ceil,
        "v3 cold stream ingest must stay within {cold_ceil}× of v2 (got {cold_ratio:.3}×)"
    );
    std::fs::remove_file(&v2_disk_path).ok();

    // --- Supervisor overhead -----------------------------------------
    // The same in-memory batch decode with an armed (but never tripped)
    // run budget attached: every payload read now passes through the
    // retry/interrupt wrapper — one closure call, one atomic check and a
    // retry-counter read per block. Gated as a ratio over the plain
    // decode so the robustness layer cannot silently tax the fault-free
    // hot path.
    let supervised_file = file
        .clone()
        .with_budget(Arc::new(RunBudget::unbounded().arm()));
    let decode_all = |f: &BalFile| {
        let mut reader = f.reader();
        let mut batch = RecordBatch::new();
        for i in 0..f.n_blocks() {
            reader.decode_batch(i, &mut batch).unwrap();
            std::hint::black_box(&batch);
        }
    };
    // Measurement discipline for a 3% ceiling: back-to-back *pairs*
    // (plain then supervised, so time-varying host noise — frequency
    // drift, CPU steal — lands inside a pair and cancels in its ratio)
    // and the *median* of the per-pair ratios (so a pair that caught
    // interference on one side is an outlier, not the verdict). The
    // run-start `batch_s` sample is deliberately not reused — it was
    // measured under different machine state.
    let once = |f: &BalFile| {
        let t = Instant::now();
        decode_all(f);
        t.elapsed().as_secs_f64()
    };
    let (mut plain_adjacent_s, mut supervised_s) = (f64::INFINITY, f64::INFINITY);
    let mut ratios: Vec<f64> = (0..(3 * reps).max(15))
        .map(|_| {
            let p = once(&file);
            let s = once(&supervised_file);
            plain_adjacent_s = plain_adjacent_s.min(p);
            supervised_s = supervised_s.min(s);
            s / p
        })
        .collect();
    ratios.sort_by(f64::total_cmp);
    let supervisor_overhead = ratios[ratios.len() / 2];
    let supervisor_ceil = env_f64("ULTRAVC_SUPERVISOR_CEIL", 1.03);
    println!(
        "supervised batch decode (armed unbounded budget): {:.1}ms vs {:.1}ms plain, \
         median paired ratio {supervisor_overhead:.3}× (acceptance ceiling: {supervisor_ceil}×)",
        supervised_s * 1e3,
        plain_adjacent_s * 1e3,
    );
    assert!(
        supervisor_overhead <= supervisor_ceil,
        "supervision must cost ≤{supervisor_ceil}× on the fault-free decode path at depth \
         {depth} (got {supervisor_overhead:.3}×)"
    );

    // --- End-to-end OpenMP identity + wall clock ---------------------
    let e2e_depth = env_f64("ULTRAVC_INGEST_E2E_DEPTH", 1_500.0);
    let threads = env_usize("ULTRAVC_THREADS", 4);
    let reference = ReferenceGenome::sars_cov_2_like(GenomeParams::tiny(), 7);
    let ds = DatasetSpec::new("ingest-e2e", e2e_depth, 7)
        .with_variants(10, 0.02, 0.1)
        .simulate(&reference);
    let run = |ingest: IngestMode| {
        let mut driver = CallDriver::openmp(threads);
        driver.config = CallerConfig::improved();
        driver.config.pileup.ingest = ingest;
        driver.run(&reference, &ds.alignments).unwrap()
    };
    let legacy_out = run(IngestMode::Legacy);
    let batch_out = run(IngestMode::Batch);
    assert_eq!(
        legacy_out.records, batch_out.records,
        "ingest paths must call identical variants"
    );
    assert_eq!(
        legacy_out.stats, batch_out.stats,
        "ingest paths must make identical tail/bail decisions"
    );
    println!(
        "\nend-to-end OpenMP ({threads} threads, depth {}): identical calls ({}) and decisions",
        fmt_depth(e2e_depth),
        batch_out.records.len()
    );
    println!(
        "  legacy ingest: wall {:?}, {} block decodes",
        legacy_out.wall, legacy_out.decode.blocks
    );
    println!(
        "  batch ingest:  wall {:?}, {} block decodes (file has {}; boundary blocks decoded once)",
        batch_out.wall,
        batch_out.decode.blocks,
        ds.alignments.n_blocks()
    );

    // --- Cold-open prefetch e2e (stream tier) ------------------------
    // The scheduled-I/O gate: a fresh `open` through the streaming tier
    // per run ("cold": index parse + every payload `pread` inside the
    // timing), one worker thread, prefetch off vs on. With prefetch on,
    // the bounded read-ahead thread fetches and decodes upcoming blocks
    // into the shared cache while the worker piles up and tests columns —
    // the overlap is the measurement, so the workload is the decode-bound
    // shape prefetch exists for: per-base noisy qualities (RLE runs of
    // ~1, the expensive end of real Illumina tails) over reads matching
    // the reference exactly (clean columns, cheap calling, ingest
    // dominant). Calls must be bitwise identical and per-run block decode
    // counts unchanged (decode-once preserved); wall time is gated at
    // ≥ ULTRAVC_PREFETCH_FLOOR (default 1.3×). Skips (with a message)
    // when no writable disk is available.
    let prefetch_threads = env_usize("ULTRAVC_PREFETCH_THREADS", 1);
    let prefetch_reads = env_usize("ULTRAVC_PREFETCH_READS", 20_000);
    let (noisy_file, noisy_ref) = noisy_match_stack(prefetch_reads, read_len, 400, 0xFEE1);
    let prefetch_disk =
        std::env::temp_dir().join(format!("ultravc-bench-prefetch-{}.bal", std::process::id()));
    let prefetch_json = match noisy_file.write_to(&prefetch_disk) {
        Err(e) => {
            println!("\nprefetch e2e: SKIPPED (no writable disk: {e})");
            "  \"prefetch\": {\"skipped\": true},".to_string()
        }
        Ok(()) => {
            let run_cold = |prefetch: PrefetchMode| {
                let disk = BalFile::open_with(&prefetch_disk, SourceTier::Stream).unwrap();
                let mut driver = CallDriver::openmp(prefetch_threads);
                driver.config = CallerConfig::improved();
                driver.prefetch = prefetch;
                driver.run(&noisy_ref, &disk).unwrap()
            };
            // Read-ahead depth = the whole schedule: the measurement is
            // pure fetch/decode-vs-consume overlap, with no pacing stalls
            // (the residency the bound exists to cap is the entire file
            // here, a few MB).
            let full_ahead = PrefetchMode::Ahead(noisy_file.n_blocks().max(1));
            // Correctness before speed: identical calls and decisions,
            // unchanged decode totals, decode-once preserved.
            let off_out = run_cold(PrefetchMode::Off);
            let on_out = run_cold(full_ahead);
            assert_eq!(
                off_out.records, on_out.records,
                "prefetch must not change calls"
            );
            assert_eq!(
                off_out.stats, on_out.stats,
                "prefetch must not change decisions"
            );
            assert_eq!(
                off_out.decode.blocks, on_out.decode.blocks,
                "prefetch must not change per-run block decode counts"
            );
            assert_eq!(
                on_out.decode.blocks,
                noisy_file.n_blocks() as u64,
                "decode-once must hold with the read-ahead running"
            );
            let off_s = time_median(reps, || {
                std::hint::black_box(run_cold(PrefetchMode::Off).records.len());
            });
            let on_s = time_median(reps, || {
                std::hint::black_box(run_cold(full_ahead).records.len());
            });
            let prefetch_speedup = off_s / on_s;
            let prefetch_floor = env_f64("ULTRAVC_PREFETCH_FLOOR", 1.3);
            // Overlap needs a second hardware thread to run the
            // read-ahead on; on a single-core host the measurement is
            // pure contention, so — like the SIMD gate on hosts without
            // a vector backend — the floor is reported but not enforced.
            let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
            let gated = cores >= 2;
            println!(
                "\nstream-tier cold e2e ({prefetch_threads} worker thread(s), {prefetch_reads} \
                 noisy-qual reads, {} blocks, decode share {:.0}%): prefetch off {:.1}ms, \
                 on {:.1}ms → {prefetch_speedup:.2}× (acceptance floor: {prefetch_floor}×{})",
                noisy_file.n_blocks(),
                100.0 * off_out.decode.decode_time.as_secs_f64() / off_out.wall.as_secs_f64(),
                off_s * 1e3,
                on_s * 1e3,
                if gated {
                    ""
                } else {
                    ", NOT enforced: single-core host cannot overlap"
                },
            );
            assert!(
                !gated || prefetch_speedup >= prefetch_floor,
                "stream-tier cold e2e with prefetch on must be ≥{prefetch_floor}× over off \
                 (got {prefetch_speedup:.2}× on {cores} cores)"
            );
            format!(
                "  \"prefetch\": {{\n    \"stream_cold_off_s\": {off_s:.6},\n    \
                 \"stream_cold_on_s\": {on_s:.6},\n    \"speedup\": {prefetch_speedup:.3},\n    \
                 \"threads\": {prefetch_threads},\n    \"reads\": {prefetch_reads},\n    \
                 \"cores\": {cores},\n    \"gated\": {gated},\n    \
                 \"identical_calls\": true,\n    \"decode_blocks_unchanged\": true\n  }},"
            )
        }
    };
    std::fs::remove_file(&prefetch_disk).ok();

    let json = format!(
        "{{\n  \"benchmark\": \"ingest_decode\",\n  \"depth\": {depth},\n  \"read_len\": {read_len},\n  \"records\": {n_records},\n  \"rows\": [\n{}\n  ],\n  \"speedup\": {speedup:.3},\n  \"disk\": {{\n    \"mmap_slowdown\": {mmap_slowdown:.3},\n    \"mmap_cold_slowdown\": {:.3},\n    \"stream_slowdown\": {stream_slowdown:.3},\n    \"stream_cold_slowdown\": {:.3},\n    \"identical_arenas\": true\n  }},\n  \"supervisor\": {{\n    \"overhead\": {supervisor_overhead:.4},\n    \"ceiling\": {supervisor_ceil}\n  }},\n  \"format\": {{\n    \"v2_bytes_per_base\": {v2_bpb:.4},\n    \"v3_bytes_per_base\": {v3_bpb:.4},\n    \"ratio\": {bpb_ratio:.4},\n    \"ratio_ceiling\": {ratio_ceil},\n    \"cold_stream_ratio\": {cold_ratio:.4},\n    \"cold_stream_ceiling\": {cold_ceil},\n    \"streams\": [\n{}\n    ]\n  }},\n{prefetch_json}\n  \"e2e\": {{\n    \"threads\": {threads},\n    \"depth\": {e2e_depth},\n    \"identical_calls\": true,\n    \"calls\": {},\n    \"legacy_wall_s\": {:.6},\n    \"batch_wall_s\": {:.6},\n    \"legacy_decoded_blocks\": {},\n    \"batch_decoded_blocks\": {},\n    \"file_blocks\": {}\n  }}\n}}\n",
        rows.iter()
            .map(|r| format!(
                "    {{\"path\": \"{}\", \"decode_ms\": {:.3}, \"records_per_s\": {:.1}, \"bases_per_s\": {:.1}}}",
                r.path,
                r.seconds * 1e3,
                r.records_per_s,
                r.bases_per_s
            ))
            .collect::<Vec<_>>()
            .join(",\n"),
        mmap_cold_s / batch_s,
        stream_cold_s / batch_s,
        WriterStats::STREAM_NAMES
            .iter()
            .zip(&v3_stats.streams)
            .map(|(name, s)| format!(
                "      {{\"name\": \"{name}\", \"raw\": {}, \"compressed\": {}, \"ratio\": {:.4}}}",
                s.raw,
                s.compressed,
                s.compressed as f64 / (s.raw as f64).max(1.0)
            ))
            .collect::<Vec<_>>()
            .join(",\n"),
        batch_out.records.len(),
        legacy_out.wall.as_secs_f64(),
        batch_out.wall.as_secs_f64(),
        legacy_out.decode.blocks,
        batch_out.decode.blocks,
        ds.alignments.n_blocks(),
    );
    std::fs::write(&out_path, json).expect("write benchmark JSON");
    std::fs::remove_file(&disk_path).ok();
    println!("wrote {out_path}");
}
