//! **A-1** — sweep of the safety margin δ.
//!
//! The paper fixed δ = 0.01 ("intentionally conservative... no
//! experimentation or fine-tuning was done to optimize this parameter")
//! and flagged the sweep as future work. This ablation runs it: for each
//! δ, the runtime, the fraction of mismatch columns skipped, and the
//! number of calls lost relative to the exact caller (false negatives the
//! margin failed to prevent).

use std::time::Instant;
use ultravc_bench::{env_f64, env_usize, fmt_duration, rule};
use ultravc_core::caller::call_variants;
use ultravc_core::config::{CallerConfig, ShortcutParams};
use ultravc_genome::reference::{GenomeParams, ReferenceGenome};
use ultravc_readsim::dataset::DatasetSpec;
use ultravc_readsim::QualityPreset;

fn main() {
    let genome_len = env_usize("ULTRAVC_GENOME", 800);
    let depth = env_f64("ULTRAVC_A1_DEPTH", 20_000.0);
    let reference = ReferenceGenome::sars_cov_2_like(GenomeParams::with_length(genome_len), 55);
    let ds = DatasetSpec::new("a1", depth, 0xA1)
        .with_variants(15, 0.005, 0.05)
        .with_quality(QualityPreset::Degraded)
        .simulate(&reference);

    let t0 = Instant::now();
    let exact = call_variants(&reference, &ds.alignments, &CallerConfig::original()).unwrap();
    let t_exact = t0.elapsed();
    println!(
        "A-1 δ sweep — {genome_len} bp at {depth}x; exact caller: {} calls in {}\n",
        exact.stats.calls,
        fmt_duration(t_exact)
    );

    let header = format!(
        "{:>8} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "δ", "runtime", "speedup", "skipped", "calls", "lost calls"
    );
    println!("{header}");
    rule(header.len());
    for &delta in &[0.0, 0.001, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2] {
        let config = CallerConfig {
            shortcut: Some(ShortcutParams {
                delta,
                ..ShortcutParams::default()
            }),
            ..CallerConfig::default()
        };
        let t1 = Instant::now();
        let got = call_variants(&reference, &ds.alignments, &config).unwrap();
        let t = t1.elapsed();
        let lost = exact.stats.calls - got.stats.calls.min(exact.stats.calls);
        println!(
            "{:>8} {:>10} {:>9.1}x {:>9.1}% {:>12} {:>12}",
            delta,
            fmt_duration(t),
            t_exact.as_secs_f64() / t.as_secs_f64().max(1e-9),
            got.stats.skip_fraction() * 100.0,
            got.stats.calls,
            lost
        );
        // The shortcut can only lose calls, never invent them.
        assert!(got.stats.calls <= exact.stats.calls);
    }
    println!(
        "\nsmaller δ skips more aggressively (the screen condition \
         p̂ ≥ ε + δ is easier to meet); at depth ≥ 100 even δ = 0 loses \
         no calls on this data, so the paper's 'intentionally \
         conservative' 0.01 buys its safety margin at essentially no \
         runtime cost — exactly the future-work observation of §IV."
    );
}
