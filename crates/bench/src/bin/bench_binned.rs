//! Grouped-trial kernel speedup measurement — the perf trajectory of the
//! quality-binned pipeline.
//!
//! Two comparisons on simulated columns at depths {10k, 100k, 1M} ×
//! K {5, 20, 80} with a Phred 20–40 quality mix:
//!
//! 1. **per-trial vs binned** — the PR 1 speedup (algorithmic: `O(d·K)` →
//!    `O(#bins·K²)`);
//! 2. **scalar vs SIMD binned** — the dispatched vector backend against
//!    the pinned scalar fallback on the *same* binned kernel (ISA-level:
//!    branchy per-output Neumaier dot products → branchless two-sum axpy
//!    sweeps).
//!
//! Prints both tables and emits the raw numbers as `BENCH_binned.json`
//! (in the working directory, override with `ULTRAVC_BENCH_OUT`) so
//! successive PRs can track the trajectory; CI uploads the JSON as a
//! workflow artifact.
//!
//! Acceptance gates this binary enforces:
//!
//! * binned ≥ 5× over per-trial at depth 100k (PR 1's floor);
//! * SIMD ≥ 1.5× over scalar at depth 100k, K = 80 — **only when a
//!   vector backend dispatched** (an AVX2/NEON host); on scalar-only
//!   hosts the gate is skipped with a message, not failed;
//! * small-K routing (`Kernels::for_k`, K = 5 < `SMALL_K_THRESHOLD`)
//!   must be ≥ the unrouted vector path within noise (floor 0.9,
//!   `ULTRAVC_SMALLK_FLOOR` overrides) — routing may never regress;
//! * every row's tail agrees across dispatch paths to ≤ 1e−14 relative
//!   (the backends are bitwise-identical by design, so this should hold
//!   with margin to spare), and early-exit decisions — bail-or-complete
//!   and the certified trial count — match exactly.

use std::time::Instant;
use ultravc_bench::{fmt_depth, phred_bins, rule};
use ultravc_stats::poisson_binomial::{BinnedTailScratch, PoissonBinomial, TailBudget};
use ultravc_stats::TailOutcome;

/// Median-of-`reps` wall time of `f`, in seconds.
fn time_median(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn rel_diff(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(f64::MIN_POSITIVE)
}

struct Row {
    depth: usize,
    k: usize,
    n_bins: usize,
    per_trial_s: f64,
    binned_s: f64,
}

struct SimdRow {
    depth: usize,
    k: usize,
    scalar_s: f64,
    simd_s: f64,
}

/// Cross-path agreement checks: identical tails (≤1e−14 rel, in practice
/// bitwise) and identical early-exit decisions, including the certified
/// bail trial count.
fn assert_paths_agree(bins: &[(f64, u32)], depth: usize, k: usize) {
    let scalar_kr = ultravc_simd::scalar();
    let active_kr = ultravc_simd::kernels();
    let scalar_val = PoissonBinomial::tail_pruned_binned_with(scalar_kr, bins, k);
    let active_val = PoissonBinomial::tail_pruned_binned_with(active_kr, bins, k);
    let rel = rel_diff(scalar_val, active_val);
    assert!(
        rel <= 1e-14,
        "dispatch paths disagree at d={depth} k={k}: scalar {scalar_val:e} vs {} {active_val:e} (rel {rel:e})",
        active_kr.name
    );
    // Early-exit decisions must match exactly: probe a budget below the
    // exact tail (forces a bail somewhere) and one above it (must
    // complete on both paths).
    let mut scratch = BinnedTailScratch::new();
    for bail_above in [scalar_val * 0.5, scalar_val * 2.0] {
        if !(bail_above.is_finite() && bail_above > 0.0) {
            continue;
        }
        let budget = TailBudget { bail_above };
        let a =
            PoissonBinomial::tail_early_exit_binned_with(scalar_kr, bins, k, budget, &mut scratch);
        let b =
            PoissonBinomial::tail_early_exit_binned_with(active_kr, bins, k, budget, &mut scratch);
        match (a, b) {
            (TailOutcome::Exact(x), TailOutcome::Exact(y)) => {
                assert!(rel_diff(x, y) <= 1e-14, "d={depth} k={k}: {x:e} vs {y:e}")
            }
            (
                TailOutcome::Bailed {
                    lower_bound: lb_a,
                    trials_used: t_a,
                },
                TailOutcome::Bailed {
                    lower_bound: lb_b,
                    trials_used: t_b,
                },
            ) => {
                assert_eq!(
                    t_a, t_b,
                    "certified-bail trial counts diverge at d={depth} k={k}"
                );
                assert!(rel_diff(lb_a, lb_b) <= 1e-14, "d={depth} k={k} bail bounds");
            }
            (a, b) => panic!("early-exit decisions diverge at d={depth} k={k}: {a:?} vs {b:?}"),
        }
    }
}

fn main() {
    let reps = ultravc_bench::env_usize("ULTRAVC_BENCH_REPS", 5);
    let out_path =
        std::env::var("ULTRAVC_BENCH_OUT").unwrap_or_else(|_| "BENCH_binned.json".to_string());
    let active = ultravc_simd::kernels();
    println!("binned vs per-trial pruned-tail kernels (median of {reps} runs)\n");
    let header = format!(
        "{:>12} {:>5} {:>7} {:>14} {:>14} {:>10}",
        "depth", "K", "#bins", "per-trial", "binned", "speedup"
    );
    println!("{header}");
    rule(header.len());

    let budget = TailBudget {
        bail_above: f64::INFINITY,
    };
    let mut scratch = BinnedTailScratch::new();
    let mut rows = Vec::new();
    let mut simd_rows = Vec::new();
    for &depth in &[10_000usize, 100_000, 1_000_000] {
        let bins = phred_bins(depth, 0xB16B);
        let pb = PoissonBinomial::from_bins(&bins);
        for &k in &[5usize, 20, 80] {
            // Sanity: both kernels agree before being timed, and the
            // dispatch paths agree with each other.
            let reference = pb.tail_pruned(k);
            let binned_val = PoissonBinomial::tail_pruned_binned(&bins, k);
            let rel = rel_diff(reference, binned_val);
            assert!(rel <= 1e-11, "kernels disagree at d={depth} k={k}: {rel:e}");
            assert_paths_agree(&bins, depth, k);

            let per_trial_s = time_median(reps, || {
                std::hint::black_box(pb.tail_pruned(std::hint::black_box(k)));
            });
            let binned_s = time_median(reps, || {
                std::hint::black_box(PoissonBinomial::tail_early_exit_binned(
                    std::hint::black_box(&bins),
                    std::hint::black_box(k),
                    budget,
                    &mut scratch,
                ));
            });
            println!(
                "{:>12} {:>5} {:>7} {:>13.2}µs {:>13.2}µs {:>9.1}×",
                fmt_depth(depth as f64),
                k,
                bins.len(),
                per_trial_s * 1e6,
                binned_s * 1e6,
                per_trial_s / binned_s
            );
            rows.push(Row {
                depth,
                k,
                n_bins: bins.len(),
                per_trial_s,
                binned_s,
            });

            // SIMD vs scalar on the same binned kernel.
            let scalar_s = time_median(reps, || {
                std::hint::black_box(PoissonBinomial::tail_early_exit_binned_with(
                    ultravc_simd::scalar(),
                    std::hint::black_box(&bins),
                    std::hint::black_box(k),
                    budget,
                    &mut scratch,
                ));
            });
            let simd_s = time_median(reps, || {
                std::hint::black_box(PoissonBinomial::tail_early_exit_binned_with(
                    active,
                    std::hint::black_box(&bins),
                    std::hint::black_box(k),
                    budget,
                    &mut scratch,
                ));
            });
            simd_rows.push(SimdRow {
                depth,
                k,
                scalar_s,
                simd_s,
            });
        }
    }

    println!(
        "\nscalar vs {} binned kernel (median of {reps} runs)\n",
        active.name
    );
    let header2 = format!(
        "{:>12} {:>5} {:>14} {:>14} {:>10}",
        "depth", "K", "scalar", active.name, "speedup"
    );
    println!("{header2}");
    rule(header2.len());
    for r in &simd_rows {
        println!(
            "{:>12} {:>5} {:>13.2}µs {:>13.2}µs {:>9.1}×",
            fmt_depth(r.depth as f64),
            r.k,
            r.scalar_s * 1e6,
            r.simd_s * 1e6,
            r.scalar_s / r.simd_s
        );
    }

    // PR 1's acceptance gate: ≥5× at depth 100k for every K tested.
    let floor = rows
        .iter()
        .filter(|r| r.depth == 100_000)
        .map(|r| r.per_trial_s / r.binned_s)
        .fold(f64::INFINITY, f64::min);
    println!("\nminimum binned speedup at 100,000×: {floor:.1}× (acceptance floor: 5×)");
    assert!(floor >= 5.0, "binned kernel must be ≥5× at depth 100k");

    // This PR's gate: SIMD ≥ 1.5× over scalar at depth 100k, K=80 — only
    // meaningful when a vector backend actually dispatched.
    let gate = simd_rows
        .iter()
        .find(|r| r.depth == 100_000 && r.k == 80)
        .expect("gate row present");
    let simd_speedup = gate.scalar_s / gate.simd_s;
    if active.name == "scalar" {
        println!(
            "simd gate skipped: no vector backend on this host (dispatched \"{}\")",
            active.name
        );
    } else {
        println!(
            "simd speedup at 100,000×, K=80: {simd_speedup:.2}× via {} (acceptance floor: 1.5×)",
            active.name
        );
        assert!(
            simd_speedup >= 1.5,
            "{} kernel must be ≥1.5× over scalar at depth 100k, K=80 (got {simd_speedup:.2}×)",
            active.name
        );
    }

    // Small-K routing gate: K=5 sits below SMALL_K_THRESHOLD, so
    // `for_k` must hand back the scalar table, and the routed call must
    // be at least at parity with the unrouted vector path. The floor is
    // noise-tolerant (these runs are microseconds; `ULTRAVC_SMALLK_FLOOR`
    // overrides the default 0.9) — the point is "routing never costs a
    // regression", not a speedup claim.
    let small_k = 5usize;
    assert!(small_k < ultravc_simd::SMALL_K_THRESHOLD);
    let routed = active.for_k(small_k);
    assert_eq!(
        routed.name, "scalar",
        "for_k must route K={small_k} to the scalar table"
    );
    let small_bins = phred_bins(100_000, 0xB16B);
    let routed_s = time_median(reps, || {
        std::hint::black_box(PoissonBinomial::tail_early_exit_binned_with(
            routed,
            std::hint::black_box(&small_bins),
            std::hint::black_box(small_k),
            budget,
            &mut scratch,
        ));
    });
    let unrouted_s = time_median(reps, || {
        std::hint::black_box(PoissonBinomial::tail_early_exit_binned_with(
            active,
            std::hint::black_box(&small_bins),
            std::hint::black_box(small_k),
            budget,
            &mut scratch,
        ));
    });
    let small_k_ratio = unrouted_s / routed_s;
    let small_k_floor = ultravc_bench::env_f64("ULTRAVC_SMALLK_FLOOR", 0.9);
    println!(
        "small-K routing at 100,000×, K={small_k}: routed {:.2}µs vs unrouted {} {:.2}µs \
         ({small_k_ratio:.2}×, floor {small_k_floor}×)",
        routed_s * 1e6,
        active.name,
        unrouted_s * 1e6,
    );
    assert!(
        small_k_ratio >= small_k_floor,
        "small-K routing must not regress: {small_k_ratio:.2}× < {small_k_floor}×"
    );

    let mut json = format!(
        "{{\n  \"benchmark\": \"binned_vs_per_trial_tail\",\n  \"kernel\": \"{}\",\n  \"rows\": [\n",
        active.name
    );
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"depth\": {}, \"k\": {}, \"n_bins\": {}, \"per_trial_us\": {:.3}, \"binned_us\": {:.3}, \"speedup\": {:.2}}}{}\n",
            r.depth,
            r.k,
            r.n_bins,
            r.per_trial_s * 1e6,
            r.binned_s * 1e6,
            r.per_trial_s / r.binned_s,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n  \"simd_rows\": [\n");
    for (i, r) in simd_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"depth\": {}, \"k\": {}, \"scalar_us\": {:.3}, \"simd_us\": {:.3}, \"speedup\": {:.2}}}{}\n",
            r.depth,
            r.k,
            r.scalar_s * 1e6,
            r.simd_s * 1e6,
            r.scalar_s / r.simd_s,
            if i + 1 == simd_rows.len() { "" } else { "," }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"small_k_routing\": {{\"k\": {small_k}, \"depth\": 100000, \"routed_us\": {:.3}, \"unrouted_us\": {:.3}, \"ratio\": {small_k_ratio:.2}}}\n}}\n",
        routed_s * 1e6,
        unrouted_s * 1e6,
    ));
    std::fs::write(&out_path, json).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
