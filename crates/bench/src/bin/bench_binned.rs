//! Grouped-trial kernel speedup measurement — the perf trajectory of the
//! quality-binned pipeline.
//!
//! Times the per-trial pruned DP against the binned DP on simulated
//! columns at depths {10k, 100k, 1M} × K {5, 20, 80} with a Phred 20–40
//! quality mix, prints the comparison table, and emits the raw numbers as
//! `BENCH_binned.json` (in the working directory, override with
//! `ULTRAVC_BENCH_OUT`) so successive PRs can track the trajectory.
//!
//! The acceptance floor this guards: ≥ 5× at depth 100k with ≤ 64
//! distinct qualities. The asymptotic story is stronger — the per-trial
//! kernel is `O(d·K)` and the binned kernel `O(#bins·K²)`, so the ratio
//! grows linearly in depth once `d ≫ #bins·K`.

use std::time::Instant;
use ultravc_bench::{fmt_depth, rule};
use ultravc_stats::poisson_binomial::{BinnedTailScratch, PoissonBinomial, TailBudget};
use ultravc_stats::rng::Rng;

/// A depth-`d` column at mixed Phred 20–40, as sorted quality bins.
fn phred_bins(depth: usize, seed: u64) -> Vec<(f64, u32)> {
    let mut rng = Rng::new(seed);
    let mut counts = [0u32; 64];
    for _ in 0..depth {
        counts[rng.range_u64(20, 40) as usize] += 1;
    }
    let mut bins: Vec<(f64, u32)> = counts
        .iter()
        .enumerate()
        .filter(|(_, &m)| m > 0)
        .map(|(q, &m)| (10f64.powf(-(q as f64) / 10.0), m))
        .collect();
    bins.sort_by(|a, b| a.0.total_cmp(&b.0));
    bins
}

/// Median-of-`reps` wall time of `f`, in seconds.
fn time_median(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct Row {
    depth: usize,
    k: usize,
    n_bins: usize,
    per_trial_s: f64,
    binned_s: f64,
}

fn main() {
    let reps = ultravc_bench::env_usize("ULTRAVC_BENCH_REPS", 5);
    let out_path =
        std::env::var("ULTRAVC_BENCH_OUT").unwrap_or_else(|_| "BENCH_binned.json".to_string());
    println!("binned vs per-trial pruned-tail kernels (median of {reps} runs)\n");
    let header = format!(
        "{:>12} {:>5} {:>7} {:>14} {:>14} {:>10}",
        "depth", "K", "#bins", "per-trial", "binned", "speedup"
    );
    println!("{header}");
    rule(header.len());

    let budget = TailBudget {
        bail_above: f64::INFINITY,
    };
    let mut scratch = BinnedTailScratch::new();
    let mut rows = Vec::new();
    for &depth in &[10_000usize, 100_000, 1_000_000] {
        let bins = phred_bins(depth, 0xB16B);
        let pb = PoissonBinomial::from_bins(&bins);
        for &k in &[5usize, 20, 80] {
            // Sanity: both kernels agree before being timed.
            let reference = pb.tail_pruned(k);
            let binned_val = PoissonBinomial::tail_pruned_binned(&bins, k);
            let rel = (reference - binned_val).abs()
                / reference.abs().max(binned_val.abs()).max(f64::MIN_POSITIVE);
            assert!(rel <= 1e-11, "kernels disagree at d={depth} k={k}: {rel:e}");

            let per_trial_s = time_median(reps, || {
                std::hint::black_box(pb.tail_pruned(std::hint::black_box(k)));
            });
            let binned_s = time_median(reps, || {
                std::hint::black_box(PoissonBinomial::tail_early_exit_binned(
                    std::hint::black_box(&bins),
                    std::hint::black_box(k),
                    budget,
                    &mut scratch,
                ));
            });
            println!(
                "{:>12} {:>5} {:>7} {:>13.2}µs {:>13.2}µs {:>9.1}×",
                fmt_depth(depth as f64),
                k,
                bins.len(),
                per_trial_s * 1e6,
                binned_s * 1e6,
                per_trial_s / binned_s
            );
            rows.push(Row {
                depth,
                k,
                n_bins: bins.len(),
                per_trial_s,
                binned_s,
            });
        }
    }

    // The acceptance gate: ≥5× at depth 100k for every K tested.
    let floor = rows
        .iter()
        .filter(|r| r.depth == 100_000)
        .map(|r| r.per_trial_s / r.binned_s)
        .fold(f64::INFINITY, f64::min);
    println!("\nminimum speedup at 100,000×: {floor:.1}× (acceptance floor: 5×)");
    assert!(floor >= 5.0, "binned kernel must be ≥5× at depth 100k");

    let mut json =
        String::from("{\n  \"benchmark\": \"binned_vs_per_trial_tail\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"depth\": {}, \"k\": {}, \"n_bins\": {}, \"per_trial_us\": {:.3}, \"binned_us\": {:.3}, \"speedup\": {:.2}}}{}\n",
            r.depth,
            r.k,
            r.n_bins,
            r.per_trial_s * 1e6,
            r.binned_s * 1e6,
            r.per_trial_s / r.binned_s,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
