//! Criterion microbenchmarks of per-trial vs grouped-trial (binned) tail
//! kernels: the tentpole comparison of the quality-binned pipeline.
//!
//! Columns are simulated at depths {10k, 100k, 1M} with a realistic Phred
//! 20–40 quality mix (≤ ~21 distinct qualities — real instruments emit
//! fewer), and tails evaluated at K ∈ {5, 20, 80}. Expected shape: the
//! per-trial pruned DP scales with `d·K` while the binned DP scales with
//! `#bins·K²`, so the gap grows linearly with depth — ≥ 5× at 100k is the
//! acceptance floor, with orders of magnitude at the 1M depth cap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ultravc_bench::phred_bins;
use ultravc_stats::poisson_binomial::{BinnedTailScratch, PoissonBinomial, TailBudget};

fn bench_binned(c: &mut Criterion) {
    let mut group = c.benchmark_group("binned_kernels");
    group.sample_size(10);
    for &depth in &[10_000usize, 100_000, 1_000_000] {
        let bins = phred_bins(depth, 0xB16B);
        let pb = PoissonBinomial::from_bins(&bins);
        let mut scratch = BinnedTailScratch::new();
        let budget = TailBudget {
            bail_above: f64::INFINITY,
        };
        for &k in &[5usize, 20, 80] {
            group.bench_with_input(
                BenchmarkId::new(format!("per_trial/k{k}"), depth),
                &k,
                |b, &k| b.iter(|| black_box(pb.tail_pruned(black_box(k)))),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("binned/k{k}"), depth),
                &k,
                |b, &k| {
                    b.iter(|| {
                        black_box(PoissonBinomial::tail_early_exit_binned(
                            black_box(&bins),
                            black_box(k),
                            budget,
                            &mut scratch,
                        ))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_binned);
criterion_main!(benches);
