//! Criterion benchmarks of the storage/pileup substrate: BAL block decode
//! throughput and pileup column streaming — the "file decompression" and
//! "BAM iteration" bands of the paper's Figure 2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use ultravc_genome::reference::{GenomeParams, ReferenceGenome};
use ultravc_pileup::{pileup_region, PileupParams};
use ultravc_readsim::dataset::DatasetSpec;

fn bench_storage(c: &mut Criterion) {
    let reference = ReferenceGenome::sars_cov_2_like(GenomeParams::with_length(500), 7);
    let ds = DatasetSpec::new("bench", 2_000.0, 0xB17E)
        .with_variants(4, 0.02, 0.05)
        .simulate(&reference);
    let file = ds.alignments.clone();
    let total_bases: u64 = file.n_records() * 100;

    let mut group = c.benchmark_group("storage");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(file.source().len() as u64));
    group.bench_function("bal_decode_all", |b| {
        b.iter(|| {
            let mut reader = file.reader();
            let mut n = 0u64;
            for i in 0..file.n_blocks() {
                n += reader.decode_block(black_box(i)).unwrap().len() as u64;
            }
            black_box(n)
        })
    });
    group.throughput(Throughput::Elements(total_bases));
    group.bench_function("pileup_stream_all", |b| {
        b.iter(|| {
            let mut depth_sum = 0usize;
            for col in pileup_region(&file, 0, 500, PileupParams::default()) {
                depth_sum += col.depth();
            }
            black_box(depth_sum)
        })
    });
    for &span in &[50u32, 250] {
        group.throughput(Throughput::Elements(span as u64));
        group.bench_with_input(
            BenchmarkId::new("pileup_region_query", span),
            &span,
            |b, &span| {
                b.iter(|| {
                    let cols =
                        pileup_region(&file, 200, 200 + span, PileupParams::default()).count();
                    black_box(cols)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);
