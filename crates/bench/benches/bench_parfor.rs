//! Criterion benchmarks of the parallel runtime: scheduling overhead per
//! claim and end-to-end balance on skewed work — the machinery behind the
//! paper's OpenMP port.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ultravc_parfor::{parallel_for, Schedule};

fn spin(n: u64) -> u64 {
    let mut acc = 0u64;
    for i in 0..n {
        acc = acc.wrapping_add(i).rotate_left(1);
    }
    acc
}

fn bench_schedules(c: &mut Criterion) {
    let mut group = c.benchmark_group("parfor");
    group.sample_size(10);

    // Scheduling overhead: many tiny items.
    let tiny: Vec<u64> = vec![16; 20_000];
    for (name, schedule) in [
        ("static", Schedule::Static),
        ("dynamic_1", Schedule::Dynamic { chunk: 1 }),
        ("dynamic_64", Schedule::Dynamic { chunk: 64 }),
        ("guided", Schedule::Guided { min_chunk: 8 }),
    ] {
        group.bench_with_input(
            BenchmarkId::new("tiny_items", name),
            &schedule,
            |b, &schedule| {
                b.iter(|| {
                    let (out, _) = parallel_for(4, black_box(&tiny), schedule, |_, _, &n| spin(n));
                    black_box(out.len())
                })
            },
        );
    }

    // Balance on skewed work: the hotspot-at-the-end shape of Figure 2.
    let skewed: Vec<u64> = (0..256)
        .map(|i| if i >= 224 { 200_000 } else { 2_000 })
        .collect();
    for (name, schedule) in [
        ("static", Schedule::Static),
        ("dynamic_1", Schedule::Dynamic { chunk: 1 }),
        ("guided", Schedule::Guided { min_chunk: 1 }),
    ] {
        group.bench_with_input(
            BenchmarkId::new("skewed_items", name),
            &schedule,
            |b, &schedule| {
                b.iter(|| {
                    let (out, _) =
                        parallel_for(4, black_box(&skewed), schedule, |_, _, &n| spin(n));
                    black_box(out.len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_schedules);
criterion_main!(benches);
