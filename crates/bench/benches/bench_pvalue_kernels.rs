//! Criterion microbenchmarks of the p-value kernels (ablation A-4):
//! the paper's `O(d²)` recurrence, the pruned `O(d·K)` DP with and without
//! early exit, Hong (2013)'s DFT-CF, and the paper's `O(d)` Poisson screen.
//!
//! Expected ordering at ultra-deep `d`: screen ≪ pruned-with-exit <
//! pruned < DFT-CF < full DP. The screen-to-exact gap *is* the paper's
//! speedup mechanism.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ultravc_stats::approx::poisson_tail;
use ultravc_stats::poisson_binomial::{PoissonBinomial, TailBudget};
use ultravc_stats::rng::Rng;

/// Realistic per-read error probabilities: Phred 20–40 mixed.
fn phred_probs(depth: usize, seed: u64) -> Vec<f64> {
    let mut rng = Rng::new(seed);
    (0..depth)
        .map(|_| 10f64.powf(-(rng.range_u64(20, 40) as f64) / 10.0))
        .collect()
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("pvalue_kernels");
    group.sample_size(10);
    for &depth in &[1_000usize, 10_000, 50_000] {
        let probs = phred_probs(depth, 42);
        let pb = PoissonBinomial::new(probs.clone()).unwrap();
        // K one sigma above the mean: an unremarkable mismatch count that
        // the exact kernels must fully process (no trivial exits).
        let lambda = pb.mean();
        let k = (lambda + lambda.sqrt()).ceil() as usize + 1;

        group.bench_with_input(BenchmarkId::new("poisson_screen", depth), &depth, |b, _| {
            b.iter(|| black_box(poisson_tail(black_box(&probs), black_box(k))))
        });
        group.bench_with_input(
            BenchmarkId::new("pruned_early_exit", depth),
            &depth,
            |b, _| {
                b.iter(|| {
                    black_box(pb.tail_early_exit(black_box(k), TailBudget { bail_above: 0.05 }))
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("pruned_full", depth), &depth, |b, _| {
            b.iter(|| black_box(pb.tail_pruned(black_box(k))))
        });
        if depth <= 10_000 {
            group.bench_with_input(BenchmarkId::new("dft_cf", depth), &depth, |b, _| {
                b.iter(|| black_box(pb.tail_dft(black_box(k))))
            });
            group.bench_with_input(BenchmarkId::new("full_dp", depth), &depth, |b, _| {
                b.iter(|| black_box(pb.tail_full(black_box(k))))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
