//! Per-sample bulkheads: a consecutive-failure circuit breaker with
//! half-open probes.
//!
//! A sample whose backing file has gone bad (dead device, truncation —
//! the faults `bamlite::io::fault` injects) must not poison the whole
//! server: each request against it would grind through the retry layer
//! and fail slowly, occupying workers that healthy samples need. The
//! breaker turns that into a bulkhead:
//!
//! * **Closed** — healthy. Failures are counted; `threshold`
//!   consecutive failures trip the breaker (any success resets the
//!   count).
//! * **Open** — quarantined. Requests are refused instantly with `503`
//!   and a `Retry-After` of the remaining cooldown; the server also
//!   drops the sample's session so recovery reopens the file from
//!   scratch.
//! * **Half-open** — after the cooldown one *probe* request is admitted
//!   (it bypasses the result cache so it exercises the real payload
//!   path). Success closes the breaker — the session was already
//!   rebuilt by the probe's own resolve step; failure re-opens it for
//!   another cooldown. While a probe is out, other requests stay
//!   quarantined — but a probe that never reports (its thread died,
//!   its client vanished before the sample was touched) only holds the
//!   state for a bounded patience window, after which the next request
//!   becomes the probe. The breaker can therefore never wedge: once
//!   faults stop, some probe always fires and succeeds.
//!
//! What counts as a *sample* failure: session open/rebuild errors and
//! call failures that indicate the file or its device (I/O errors,
//! corruption, contained panics). Client-attributable outcomes —
//! invalid regions, deadline expiries, disconnect cancellations — are
//! explicitly neutral or successful; a client with a 1 ms timeout must
//! not quarantine a healthy sample.

use std::time::{Duration, Instant};
use ultravc_sync::atomic::{AtomicU64, Ordering};
use ultravc_sync::{Mutex, MutexGuard, PoisonError};

/// Breaker tuning shared by every sample of a server.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive failures that trip Closed → Open.
    pub threshold: u32,
    /// How long Open refuses requests before admitting a probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    /// 3 consecutive failures; 2 s cooldown.
    fn default() -> BreakerConfig {
        BreakerConfig {
            threshold: 3,
            cooldown: Duration::from_secs(2),
        }
    }
}

impl BreakerConfig {
    /// How long a half-open probe may stay unreported before the next
    /// request takes over as probe: one cooldown, floored at 5 s so a
    /// short-cooldown test config still tolerates a slow probe call.
    fn probe_patience(&self) -> Duration {
        self.cooldown.max(Duration::from_secs(5))
    }
}

#[derive(Debug, Clone, Copy)]
enum BreakerState {
    Closed { failures: u32 },
    Open { until: Instant },
    HalfOpen { probe_deadline: Instant },
}

/// The admission decision for one request against a sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Serve it. `probe` marks the single half-open trial request —
    /// the server bypasses the result cache for it and must report the
    /// outcome (or [`SampleHealth::record_neutral`] if the request
    /// never touched the sample).
    Admit {
        /// Whether this request is the half-open probe.
        probe: bool,
    },
    /// Quarantined: answer `503` immediately with this `Retry-After`.
    Quarantined {
        /// Remaining cooldown (or probe patience).
        retry_after: Duration,
    },
}

/// One sample's breaker state plus its lifetime counters.
#[derive(Debug)]
pub struct SampleHealth {
    state: Mutex<BreakerState>,
    /// Closed → Open transitions.
    trips: AtomicU64,
    /// Requests refused while Open/HalfOpen.
    quarantined: AtomicU64,
    /// Half-open probes admitted.
    probes: AtomicU64,
    /// Open/HalfOpen → Closed transitions.
    recoveries: AtomicU64,
}

impl Default for SampleHealth {
    fn default() -> SampleHealth {
        SampleHealth {
            state: Mutex::new(BreakerState::Closed { failures: 0 }),
            trips: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            probes: AtomicU64::new(0),
            recoveries: AtomicU64::new(0),
        }
    }
}

/// Counters snapshot for `/stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthStats {
    /// Breaker state name: `closed`, `open`, or `half-open`.
    pub state: &'static str,
    /// Consecutive failures while Closed (0 in other states).
    pub consecutive_failures: u32,
    /// Closed → Open transitions.
    pub trips: u64,
    /// Fast-503s served while quarantined.
    pub quarantined: u64,
    /// Half-open probes admitted.
    pub probes: u64,
    /// Recoveries back to Closed.
    pub recoveries: u64,
}

impl SampleHealth {
    fn lock(&self) -> MutexGuard<'_, BreakerState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Decide whether to serve a request against this sample now.
    pub fn admit(&self, config: &BreakerConfig) -> Admission {
        let now = Instant::now();
        let mut state = self.lock();
        match *state {
            BreakerState::Closed { .. } => Admission::Admit { probe: false },
            BreakerState::Open { until } if now < until => {
                self.quarantined.fetch_add(1, Ordering::SeqCst);
                Admission::Quarantined {
                    retry_after: until - now,
                }
            }
            // Cooldown elapsed, or the previous probe went silent past
            // its patience: this request becomes the probe.
            BreakerState::Open { .. } => {
                *state = BreakerState::HalfOpen {
                    probe_deadline: now + config.probe_patience(),
                };
                self.probes.fetch_add(1, Ordering::SeqCst);
                Admission::Admit { probe: true }
            }
            BreakerState::HalfOpen { probe_deadline } if now < probe_deadline => {
                self.quarantined.fetch_add(1, Ordering::SeqCst);
                Admission::Quarantined {
                    retry_after: probe_deadline - now,
                }
            }
            BreakerState::HalfOpen { .. } => {
                *state = BreakerState::HalfOpen {
                    probe_deadline: now + config.probe_patience(),
                };
                self.probes.fetch_add(1, Ordering::SeqCst);
                Admission::Admit { probe: true }
            }
        }
    }

    /// Report a successful exchange with the sample's file. Closes the
    /// breaker from any state; returns `true` when this was a recovery
    /// (the breaker was not Closed).
    pub fn record_success(&self) -> bool {
        let mut state = self.lock();
        let recovered = !matches!(*state, BreakerState::Closed { .. });
        *state = BreakerState::Closed { failures: 0 };
        if recovered {
            self.recoveries.fetch_add(1, Ordering::SeqCst);
        }
        recovered
    }

    /// Report a sample-attributable failure. Returns `true` when this
    /// call tripped (or re-tripped) the breaker Open — the server then
    /// drops the sample's session so recovery rebuilds it.
    pub fn record_failure(&self, config: &BreakerConfig) -> bool {
        let mut state = self.lock();
        match *state {
            BreakerState::Closed { failures } => {
                let failures = failures + 1;
                if failures >= config.threshold.max(1) {
                    *state = BreakerState::Open {
                        until: Instant::now() + config.cooldown,
                    };
                    self.trips.fetch_add(1, Ordering::SeqCst);
                    true
                } else {
                    *state = BreakerState::Closed { failures };
                    false
                }
            }
            // A failed probe re-opens for another cooldown.
            BreakerState::HalfOpen { .. } => {
                *state = BreakerState::Open {
                    until: Instant::now() + config.cooldown,
                };
                self.trips.fetch_add(1, Ordering::SeqCst);
                true
            }
            // Concurrent failures while already Open change nothing.
            BreakerState::Open { .. } => false,
        }
    }

    /// Report that an admitted request ended without exercising the
    /// sample (client error, shed before queueing). Releases a probe's
    /// hold so the next request can probe immediately; otherwise a
    /// no-op.
    pub fn record_neutral(&self) {
        let mut state = self.lock();
        if let BreakerState::HalfOpen { .. } = *state {
            *state = BreakerState::HalfOpen {
                probe_deadline: Instant::now(),
            };
        }
    }

    /// The breaker state name (`closed` / `open` / `half-open`).
    pub fn state_name(&self) -> &'static str {
        match *self.lock() {
            BreakerState::Closed { .. } => "closed",
            BreakerState::Open { .. } => "open",
            BreakerState::HalfOpen { .. } => "half-open",
        }
    }

    /// Counters snapshot.
    pub fn stats(&self) -> HealthStats {
        let state = self.lock();
        let (name, failures) = match *state {
            BreakerState::Closed { failures } => ("closed", failures),
            BreakerState::Open { .. } => ("open", 0),
            BreakerState::HalfOpen { .. } => ("half-open", 0),
        };
        HealthStats {
            state: name,
            consecutive_failures: failures,
            trips: self.trips.load(Ordering::SeqCst),
            quarantined: self.quarantined.load(Ordering::SeqCst),
            probes: self.probes.load(Ordering::SeqCst),
            recoveries: self.recoveries.load(Ordering::SeqCst),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> BreakerConfig {
        BreakerConfig {
            threshold: 3,
            cooldown: Duration::from_millis(30),
        }
    }

    #[test]
    fn trips_after_threshold_consecutive_failures_only() {
        let h = SampleHealth::default();
        let cfg = fast();
        assert!(!h.record_failure(&cfg));
        assert!(!h.record_failure(&cfg));
        // A success resets the count — two more failures don't trip.
        h.record_success();
        assert!(!h.record_failure(&cfg));
        assert!(!h.record_failure(&cfg));
        assert_eq!(h.state_name(), "closed");
        assert!(h.record_failure(&cfg), "third consecutive failure trips");
        assert_eq!(h.state_name(), "open");
        assert_eq!(h.stats().trips, 1);
    }

    #[test]
    fn open_quarantines_then_probes_then_recovers() {
        let h = SampleHealth::default();
        let cfg = fast();
        for _ in 0..cfg.threshold {
            h.record_failure(&cfg);
        }
        // Quarantined during cooldown, with a positive Retry-After.
        match h.admit(&cfg) {
            Admission::Quarantined { retry_after } => assert!(retry_after > Duration::ZERO),
            other => panic!("expected quarantine, got {other:?}"),
        }
        std::thread::sleep(cfg.cooldown + Duration::from_millis(5));
        // First request after cooldown is the probe; followers wait.
        assert_eq!(h.admit(&cfg), Admission::Admit { probe: true });
        assert!(matches!(h.admit(&cfg), Admission::Quarantined { .. }));
        assert!(h.record_success(), "probe success is a recovery");
        assert_eq!(h.state_name(), "closed");
        assert_eq!(h.admit(&cfg), Admission::Admit { probe: false });
        let stats = h.stats();
        assert_eq!((stats.probes, stats.recoveries), (1, 1));
        assert!(stats.quarantined >= 2);
    }

    #[test]
    fn failed_probe_reopens_for_another_cooldown() {
        let h = SampleHealth::default();
        let cfg = fast();
        for _ in 0..cfg.threshold {
            h.record_failure(&cfg);
        }
        std::thread::sleep(cfg.cooldown + Duration::from_millis(5));
        assert_eq!(h.admit(&cfg), Admission::Admit { probe: true });
        assert!(h.record_failure(&cfg), "failed probe re-trips");
        assert_eq!(h.state_name(), "open");
        assert!(matches!(h.admit(&cfg), Admission::Quarantined { .. }));
        // And the cycle repeats: after another cooldown a probe fires.
        std::thread::sleep(cfg.cooldown + Duration::from_millis(5));
        assert_eq!(h.admit(&cfg), Admission::Admit { probe: true });
    }

    #[test]
    fn lost_probe_cannot_wedge_the_breaker() {
        let h = SampleHealth::default();
        let cfg = BreakerConfig {
            threshold: 1,
            cooldown: Duration::from_millis(10),
        };
        h.record_failure(&cfg);
        std::thread::sleep(Duration::from_millis(15));
        // Probe admitted... and never reports (thread died).
        assert_eq!(h.admit(&cfg), Admission::Admit { probe: true });
        // A neutral report (request didn't touch the sample) releases
        // the hold immediately.
        h.record_neutral();
        assert_eq!(h.admit(&cfg), Admission::Admit { probe: true });
        // Even with no report at all, patience eventually expires and
        // the state is self-healing (checked structurally: the deadline
        // passes and admit() re-probes — simulated by a neutral here to
        // keep the test fast).
        h.record_neutral();
        assert_eq!(h.admit(&cfg), Admission::Admit { probe: true });
        h.record_success();
        assert_eq!(h.state_name(), "closed");
    }
}
