//! Multi-sample serve configuration from a file: a minimal TOML-subset
//! parser for `ultravc serve --config samples.toml` (the build is
//! offline, so no toml crate — the subset below is all the surface the
//! serve layer needs).
//!
//! ```toml
//! # samples.toml — one [[sample]] table per served sample
//! [[sample]]
//! name  = "patient-a"        # optional; defaults to the BAL file stem
//! bal   = "a.bal"            # required; relative paths resolve
//! fasta = "ref.fa"           # required;   against the config file's dir
//! fault = "eio=0.01,seed=7"  # optional seeded FaultPlan (chaos/testing)
//! ```
//!
//! Values may be double-quoted or bare (no escapes, no multi-line).
//! Unknown keys, duplicate keys within a table, duplicate sample names
//! and missing required keys are hard errors — a typo must not silently
//! serve the wrong file.

use crate::server::SampleSpec;
use std::path::{Path, PathBuf};
use ultravc_bamlite::FaultPlan;

/// One partially-parsed `[[sample]]` table.
#[derive(Default)]
struct Table {
    name: Option<String>,
    bal: Option<String>,
    fasta: Option<String>,
    fault: Option<String>,
    line: usize,
}

fn unquote(raw: &str, line: usize) -> Result<String, String> {
    let raw = raw.trim();
    if let Some(stripped) = raw.strip_prefix('"') {
        let inner = stripped
            .strip_suffix('"')
            .ok_or_else(|| format!("line {line}: unterminated string {raw:?}"))?;
        if inner.contains('"') || inner.contains('\\') {
            return Err(format!("line {line}: escapes are not supported in {raw:?}"));
        }
        Ok(inner.to_string())
    } else if raw.is_empty() {
        Err(format!("line {line}: empty value"))
    } else {
        Ok(raw.to_string())
    }
}

/// Resolve a possibly-relative path against the config file's
/// directory.
fn resolve(base: &Path, raw: &str) -> PathBuf {
    let p = PathBuf::from(raw);
    if p.is_absolute() {
        p
    } else {
        base.join(p)
    }
}

fn finish(table: Table, base: &Path) -> Result<SampleSpec, String> {
    let at = table.line;
    let bal = table
        .bal
        .ok_or_else(|| format!("[[sample]] at line {at}: missing required key `bal`"))?;
    let fasta = table
        .fasta
        .ok_or_else(|| format!("[[sample]] at line {at}: missing required key `fasta`"))?;
    let bal = resolve(base, &bal);
    let name = match table.name {
        Some(n) if !n.is_empty() => n,
        Some(_) => return Err(format!("[[sample]] at line {at}: empty `name`")),
        None => bal
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .ok_or_else(|| format!("[[sample]] at line {at}: cannot derive a name from `bal`"))?,
    };
    let fault = match table.fault {
        None => None,
        Some(spec) => Some(
            FaultPlan::parse(&spec)
                .map_err(|e| format!("[[sample]] {name:?}: bad `fault` spec: {e}"))?,
        ),
    };
    Ok(SampleSpec {
        name,
        bal,
        fasta: resolve(base, &fasta),
        fault,
    })
}

/// Parse a samples config (see the module docs for the grammar).
/// `base_dir` anchors relative `bal`/`fasta` paths — pass the config
/// file's parent directory.
pub fn parse_samples(text: &str, base_dir: &Path) -> Result<Vec<SampleSpec>, String> {
    let mut samples: Vec<SampleSpec> = Vec::new();
    let mut current: Option<Table> = None;
    for (i, raw_line) in text.lines().enumerate() {
        let line_no = i + 1;
        // Strip comments; the values this grammar allows never contain
        // `#` (quoted values are paths/fault specs).
        let line = raw_line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[sample]]" {
            if let Some(table) = current.take() {
                samples.push(finish(table, base_dir)?);
            }
            current = Some(Table {
                line: line_no,
                ..Table::default()
            });
            continue;
        }
        if line.starts_with('[') {
            return Err(format!(
                "line {line_no}: unknown table {line:?} (only [[sample]] is supported)"
            ));
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {line_no}: expected `key = value`, got {line:?}"))?;
        let table = current
            .as_mut()
            .ok_or_else(|| format!("line {line_no}: key outside any [[sample]] table"))?;
        let value = unquote(value, line_no)?;
        let slot = match key.trim() {
            "name" => &mut table.name,
            "bal" => &mut table.bal,
            "fasta" => &mut table.fasta,
            "fault" => &mut table.fault,
            other => {
                return Err(format!(
                    "line {line_no}: unknown key {other:?} (expected name/bal/fasta/fault)"
                ))
            }
        };
        if slot.is_some() {
            return Err(format!("line {line_no}: duplicate key {:?}", key.trim()));
        }
        *slot = Some(value);
    }
    if let Some(table) = current.take() {
        samples.push(finish(table, base_dir)?);
    }
    if samples.is_empty() {
        return Err("config defines no [[sample]] tables".to_string());
    }
    let mut seen = std::collections::HashSet::new();
    for s in &samples {
        if !seen.insert(s.name.clone()) {
            return Err(format!("duplicate sample name {:?}", s.name));
        }
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_multi_sample_configs_with_defaults_and_faults() {
        let text = r#"
# two samples sharing a reference
[[sample]]
name  = "a"
bal   = "a.bal"
fasta = "ref.fa"

[[sample]]
bal   = /abs/b.bal   # bare value, absolute path, name from stem
fasta = "ref.fa"
fault = "eio=0.5,seed=9"
"#;
        let samples = parse_samples(text, Path::new("/cfg")).unwrap();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].name, "a");
        assert_eq!(samples[0].bal, PathBuf::from("/cfg/a.bal"));
        assert_eq!(samples[0].fasta, PathBuf::from("/cfg/ref.fa"));
        assert!(samples[0].fault.is_none());
        assert_eq!(samples[1].name, "b");
        assert_eq!(samples[1].bal, PathBuf::from("/abs/b.bal"));
        assert!(samples[1].fault.is_some());
    }

    #[test]
    fn rejects_malformed_configs_loudly() {
        let base = Path::new(".");
        for (text, want) in [
            ("", "no [[sample]]"),
            ("[[sample]]\nbal = \"x.bal\"\n", "missing required key `fasta`"),
            ("[[sample]]\nfasta = \"r.fa\"\n", "missing required key `bal`"),
            ("bal = \"x.bal\"\n", "outside any [[sample]]"),
            ("[[sample]]\nbal = \"x\"\nbal = \"y\"\nfasta = \"r\"\n", "duplicate key"),
            ("[[sample]]\nnope = \"x\"\n", "unknown key"),
            ("[[server]]\n", "unknown table"),
            ("[[sample]]\nbal = \"unterminated\nfasta = \"r\"\n", "unterminated"),
            (
                "[[sample]]\nbal = \"x.bal\"\nfasta = \"r\"\nfault = \"bogus=1\"\n",
                "bad `fault` spec",
            ),
            (
                "[[sample]]\nname=\"s\"\nbal=\"x\"\nfasta=\"r\"\n[[sample]]\nname=\"s\"\nbal=\"y\"\nfasta=\"r\"\n",
                "duplicate sample name",
            ),
        ] {
            let err = parse_samples(text, base).unwrap_err();
            assert!(err.contains(want), "{text:?}: {err}");
        }
    }
}
