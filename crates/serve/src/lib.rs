//! # ultravc-serve
//!
//! The region-call serving layer: a long-lived process that holds BAL
//! files open on the mmap tier and answers htsget-style region queries
//! over HTTP, turning the batch caller into the interactive service the
//! paper's speedup makes feasible (many clients querying regions of
//! many samples continuously, instead of one CLI run per question).
//!
//! The build is fully offline, so the HTTP layer is a minimal
//! hand-rolled HTTP/1.1 implementation over `std::net::TcpListener` —
//! no async runtime, one OS thread per connection for parsing and
//! response streaming, with the actual calling work funnelled onto one
//! shared fixed-size worker pool (so a 1M-depth region cannot starve
//! the listener or small queries: admission control bounds in-flight
//! depth and everything else queues).
//!
//! ## Request grammar
//!
//! ```text
//! GET /call?sample=NAME&region=CHROM[:START-END][&min-af=F][&format=vcf|json]
//!          [&timeout-ms=N][&cache=on|off]
//! GET /health          → 200 "ok"
//! GET /stats           → JSON counters (requests, cache, in-flight)
//! GET /shutdown        → graceful stop
//! ```
//!
//! `region` coordinates are 1-based inclusive (`NC_045512.2:1-29903`
//! style); a bare `CHROM` means the whole genome. Unknown query
//! parameters, malformed regions, and non-positive `timeout-ms` are
//! rejected with `400`. Unknown samples are `404`.
//!
//! ## Response schema
//!
//! * **VCF** (default): the same bytes `ultravc call --region` writes —
//!   byte-for-byte, which CI asserts. Streamed with chunked
//!   transfer-encoding so ultra-deep responses never buffer whole.
//! * **JSON** (`format=json`): records plus run metadata (stats,
//!   cache/partial status) in one object.
//! * **Partial results**: a request whose [`RunBudget`] deadline
//!   expired, whose client disconnected, or whose worker hit a
//!   contained per-region failure returns **206** with the completed
//!   regions' records and the failed regions itemized — in the
//!   `X-Ultravc-Partial-Regions` header (VCF) or the `partial` array
//!   (JSON). A clean run is `200`.
//!
//! ## Sessions, cache, and the `RunBudget` mapping
//!
//! Each sample is a [`CallSession`](ultravc_core::CallSession): file,
//! dictionary, whole-genome tester and source advice survive across
//! requests. Each request arms its **own** [`RunBudget`]: the request's
//! `timeout-ms` (or the server default) becomes the budget deadline,
//! and a detected client disconnect fires the budget's cancel token —
//! either way the request drains as a partial outcome without
//! poisoning the session or the cache.
//!
//! Completed (and only completed) call results are cached per
//! `(sample, file identity, region)` — file identity being the on-disk
//! [`FileFingerprint`](ultravc_bamlite::FileFingerprint) plus the
//! parsed [`content_id`](ultravc_bamlite::BalFile::content_id) — and
//! the fingerprint is re-probed on every request, so rewriting a BAL
//! file under the server invalidates its session and cached results on
//! the next query. `min-af` is applied at render time, so one cached
//! result serves every threshold.
//!
//! [`RunBudget`]: ultravc_core::RunBudget

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod http;
pub mod query;
pub mod server;

pub use cache::{CacheStats, CachedCall, ResultCache};
pub use client::{http_get, read_response, Response};
pub use query::{parse_region, CallQuery, Format, Region};
pub use server::{SampleSpec, ServeConfig, Server, ServerReport};

/// Drop records below an allele-frequency floor. This is the one
/// post-filter knob the serving layer adds on top of the driver
/// pipeline; the CLI's `--min-af` calls the same function so the two
/// front ends stay bitwise identical.
pub fn apply_min_af(records: &mut Vec<ultravc_vcf::VcfRecord>, min_af: Option<f64>) {
    if let Some(floor) = min_af {
        records.retain(|r| r.info.af >= floor);
    }
}
