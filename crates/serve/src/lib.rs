//! # ultravc-serve
//!
//! The region-call serving layer: a long-lived process that holds BAL
//! files open on the mmap tier and answers htsget-style region queries
//! over HTTP, turning the batch caller into the interactive service the
//! paper's speedup makes feasible (many clients querying regions of
//! many samples continuously, instead of one CLI run per question).
//!
//! The build is fully offline, so the HTTP layer is a minimal
//! hand-rolled HTTP/1.1 implementation over `std::net::TcpListener` —
//! no async runtime, one OS thread per connection for parsing and
//! response streaming, with the actual calling work funnelled onto one
//! shared fixed-size worker pool (so a 1M-depth region cannot starve
//! the listener or small queries: admission control bounds in-flight
//! depth and everything else queues).
//!
//! ## Request grammar
//!
//! ```text
//! GET /call?sample=NAME&region=CHROM[:START-END][&min-af=F][&format=vcf|json]
//!          [&timeout-ms=N][&cache=on|off]
//! GET /health          → 200 "ok" + per-sample breaker state
//!                        (503 "degraded" when any breaker is open)
//! GET /stats           → JSON counters (requests, queue, cache,
//!                        per-sample breakers, in-flight)
//! GET /shutdown        → graceful stop (cancels in-flight calls)
//! ```
//!
//! `region` coordinates are 1-based inclusive (`NC_045512.2:1-29903`
//! style); a bare `CHROM` means the whole genome. Unknown query
//! parameters, malformed regions, and non-positive `timeout-ms` are
//! rejected with `400`. Unknown samples are `404`.
//!
//! ## Response schema
//!
//! * **VCF** (default): the same bytes `ultravc call --region` writes —
//!   byte-for-byte, which CI asserts. Streamed with chunked
//!   transfer-encoding so ultra-deep responses never buffer whole.
//! * **JSON** (`format=json`): records plus run metadata (stats,
//!   cache/partial status) in one object.
//! * **Partial results**: a request whose [`RunBudget`] deadline
//!   expired, whose client disconnected, or whose worker hit a
//!   contained per-region failure returns **206** with the completed
//!   regions' records and the failed regions itemized — in the
//!   `X-Ultravc-Partial-Regions` header (VCF) or the `partial` array
//!   (JSON). A clean run is `200`.
//!
//! ## Sessions, cache, and the `RunBudget` mapping
//!
//! Each sample is a [`CallSession`](ultravc_core::CallSession): file,
//! dictionary, whole-genome tester and source advice survive across
//! requests. Each request arms its **own** [`RunBudget`]: the request's
//! `timeout-ms` (or the server default) becomes the budget deadline,
//! and a detected client disconnect fires the budget's cancel token —
//! either way the request drains as a partial outcome without
//! poisoning the session or the cache.
//!
//! Completed (and only completed) call results are cached per
//! `(sample, file identity, region)` — file identity being the on-disk
//! [`FileFingerprint`](ultravc_bamlite::FileFingerprint) plus the
//! parsed [`content_id`](ultravc_bamlite::BalFile::content_id) — and
//! the fingerprint is re-probed on every request, so rewriting a BAL
//! file under the server invalidates its session and cached results on
//! the next query. `min-af` is applied at render time, so one cached
//! result serves every threshold.
//!
//! ## Overload and failure behavior
//!
//! Requests are priced **before** they run ([`CallSession::estimate_cost`]
//! — records the span covers, straight from the BAL index). The worker
//! queue ([`sched::CostQueue`]) is two-class small-first with a bounded
//! whale bypass, and holds a cost budget over queued + running work:
//! pushes past the budget are shed with `503` and a `Retry-After`
//! derived from the measured drain rate. The result cache shares the
//! same cost currency — a whale result over half the cache's cost
//! budget is refused admission rather than purging the hot small-span
//! working set.
//!
//! Each sample sits behind its own circuit breaker
//! ([`health::SampleHealth`]): consecutive sample-attributable failures
//! (open errors, I/O faults, contained panics) trip it open, requests
//! for that sample answer `503` instantly (healthy samples are
//! unaffected), and after a cooldown a half-open probe — which bypasses
//! the cache — rebuilds the session and closes the breaker on success.
//!
//! Connections are HTTP/1.1 keep-alive by default (`Connection: close`
//! honored, 5 s idle timeout, 64 requests per connection). Pipelining
//! is **not** supported: the disconnect probe may consume bytes a
//! pipelined request sent early.
//!
//! [`RunBudget`]: ultravc_core::RunBudget
//! [`CallSession::estimate_cost`]: ultravc_core::CallSession::estimate_cost

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod config;
pub mod health;
pub mod http;
pub mod query;
pub mod sched;
pub mod server;

pub use cache::{CacheStats, CachedCall, ResultCache};
pub use client::{http_get, read_response, ClientConn, Response};
pub use config::parse_samples;
pub use health::{Admission, BreakerConfig, HealthStats, SampleHealth};
pub use query::{parse_region, CallQuery, Format, Region};
pub use sched::{CostQueue, PushError, QueueStats};
pub use server::{SampleSpec, ServeConfig, Server, ServerReport};

/// Drop records below an allele-frequency floor. This is the one
/// post-filter knob the serving layer adds on top of the driver
/// pipeline; the CLI's `--min-af` calls the same function so the two
/// front ends stay bitwise identical.
pub fn apply_min_af(records: &mut Vec<ultravc_vcf::VcfRecord>, min_af: Option<f64>) {
    if let Some(floor) = min_af {
        records.retain(|r| r.info.af >= floor);
    }
}
