//! The per-file call-result cache.
//!
//! Keyed on `(sample, file identity, region)`, where file identity is
//! the on-disk [`FileFingerprint`] (length + mtime, re-probed every
//! request) plus the parsed [`content_id`](ultravc_bamlite::BalFile::content_id)
//! — so a rewritten file can never serve stale results: its fingerprint
//! differs, the old entries become unreachable, and the server drops
//! them explicitly when it rebuilds the sample's session.
//!
//! Only **complete** outcomes are cached. A partial result (deadline,
//! disconnect, contained worker failure) reflects one request's budget,
//! not the file's content, and must never be replayed to a healthier
//! request. Post-filter knobs (`min-af`) are applied at render time, so
//! they are deliberately *not* part of the key — one entry serves every
//! threshold.
//!
//! Eviction is least-recently-used by a monotonic touch tick, scanned
//! linearly on insert — capacities are tens of entries, not millions,
//! so an O(n) evict beats maintaining an ordered structure.
//!
//! Admission and eviction are **cost-aware**: every entry carries the
//! request's up-front cost estimate (records its span covers — the same
//! estimate the scheduler prices jobs with), and the cache holds a cost
//! budget alongside its entry capacity. An entry costlier than half the
//! budget is refused outright (`oversize`), and inserts evict LRU
//! entries until both the entry capacity and the cost budget hold — so
//! one whale span can displace at most its own cost's worth of entries,
//! never the whole working set of hot small spans.

use std::collections::HashMap;
use ultravc_bamlite::FileFingerprint;
use ultravc_core::CallStats;
use ultravc_sync::{Arc, Mutex, MutexGuard, PoisonError};
use ultravc_vcf::VcfRecord;

/// Cache key: which sample file (by identity, not path) and which
/// column range produced the records.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Sample name the request addressed.
    pub sample: String,
    /// On-disk identity at probe time.
    pub fingerprint: FileFingerprint,
    /// Parsed-structure identity ([`ultravc_bamlite::BalFile::content_id`]).
    pub content: u64,
    /// Region start (0-based).
    pub start: u32,
    /// Region end (exclusive).
    pub end: u32,
}

/// A cached complete call result: the driver's filtered records and
/// decision counters, shared by `Arc` so cache hits clone nothing.
#[derive(Debug)]
pub struct CachedCall {
    /// Filtered records for the region.
    pub records: Vec<VcfRecord>,
    /// Decision-path counters for the region.
    pub stats: CallStats,
}

struct Slot {
    value: Arc<CachedCall>,
    last_used: u64,
    cost: u64,
}

#[derive(Default)]
struct CacheState {
    map: HashMap<CacheKey, Slot>,
    tick: u64,
    hits: u64,
    misses: u64,
    invalidated: u64,
    total_cost: u64,
    oversize: u64,
    evicted: u64,
}

/// Point-in-time cache counters for `/stats` and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that missed (including while disabled).
    pub misses: u64,
    /// Entries dropped by invalidation (not eviction).
    pub invalidated: u64,
    /// Live entries.
    pub entries: usize,
    /// Summed cost of live entries.
    pub total_cost: u64,
    /// Inserts refused because one entry exceeded half the cost budget.
    pub oversize: u64,
    /// Entries dropped by LRU eviction (capacity or cost pressure).
    pub evicted: u64,
}

/// The result cache. Capacity 0 disables it (every lookup misses,
/// inserts are dropped) — the same code path, just nothing retained.
pub struct ResultCache {
    inner: Mutex<CacheState>,
    capacity: usize,
    /// Cost budget over live entries; 0 = unlimited (entry-count LRU
    /// only).
    cost_budget: u64,
}

impl ResultCache {
    /// A cache holding at most `capacity` results with no cost budget.
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache::with_cost_budget(capacity, 0)
    }

    /// A cache bounded by both `capacity` entries and `cost_budget`
    /// summed entry cost (0 = cost accounting off). Entries costlier
    /// than `cost_budget / 2` are never admitted.
    pub fn with_cost_budget(capacity: usize, cost_budget: u64) -> ResultCache {
        ResultCache {
            inner: Mutex::new(CacheState::default()),
            capacity,
            cost_budget,
        }
    }

    fn lock(&self) -> MutexGuard<'_, CacheState> {
        // A panic while holding the lock leaves only per-entry state;
        // every entry is immutable once inserted, so recovery is safe.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Look up a complete result, refreshing its recency on hit.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<CachedCall>> {
        let mut state = self.lock();
        state.tick += 1;
        let tick = state.tick;
        match state.map.get_mut(key) {
            Some(slot) => {
                slot.last_used = tick;
                let value = Arc::clone(&slot.value);
                state.hits += 1;
                Some(value)
            }
            None => {
                state.misses += 1;
                None
            }
        }
    }

    /// Insert a complete result at `cost`, evicting least-recently-used
    /// entries until both the entry capacity and the cost budget hold.
    /// An entry costlier than half the cost budget is refused — one
    /// whale span must not displace the hot small working set. No-op
    /// when the cache is disabled.
    pub fn insert(&self, key: CacheKey, value: Arc<CachedCall>, cost: u64) {
        if self.capacity == 0 {
            return;
        }
        let mut state = self.lock();
        if self.cost_budget > 0 && cost > self.cost_budget / 2 {
            state.oversize += 1;
            return;
        }
        state.tick += 1;
        let tick = state.tick;
        // Replacing an entry releases its cost before the fit check.
        if let Some(old) = state.map.remove(&key) {
            state.total_cost = state.total_cost.saturating_sub(old.cost);
        }
        while state.map.len() >= self.capacity
            || (self.cost_budget > 0 && state.total_cost.saturating_add(cost) > self.cost_budget)
        {
            let Some(oldest) = state
                .map
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some(slot) = state.map.remove(&oldest) {
                state.total_cost = state.total_cost.saturating_sub(slot.cost);
                state.evicted += 1;
            }
        }
        state.total_cost = state.total_cost.saturating_add(cost);
        state.map.insert(
            key,
            Slot {
                value,
                last_used: tick,
                cost,
            },
        );
    }

    /// Drop every entry for `sample` (its file was rewritten). Returns
    /// how many entries were dropped.
    pub fn invalidate_sample(&self, sample: &str) -> usize {
        let mut state = self.lock();
        let before = state.map.len();
        let mut freed = 0u64;
        state.map.retain(|k, slot| {
            let keep = k.sample != sample;
            if !keep {
                freed += slot.cost;
            }
            keep
        });
        let dropped = before - state.map.len();
        state.invalidated += dropped as u64;
        state.total_cost = state.total_cost.saturating_sub(freed);
        dropped
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let state = self.lock();
        CacheStats {
            hits: state.hits,
            misses: state.misses,
            invalidated: state.invalidated,
            entries: state.map.len(),
            total_cost: state.total_cost,
            oversize: state.oversize,
            evicted: state.evicted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(sample: &str, start: u32) -> CacheKey {
        CacheKey {
            sample: sample.to_string(),
            fingerprint: FileFingerprint {
                len: 100,
                modified: None,
            },
            content: 7,
            start,
            end: start + 10,
        }
    }

    fn value() -> Arc<CachedCall> {
        Arc::new(CachedCall {
            records: Vec::new(),
            stats: CallStats::default(),
        })
    }

    #[test]
    fn hit_miss_and_counters() {
        let cache = ResultCache::new(4);
        assert!(cache.get(&key("a", 0)).is_none());
        cache.insert(key("a", 0), value(), 1);
        assert!(cache.get(&key("a", 0)).is_some());
        // Different fingerprint ⇒ different key ⇒ miss.
        let mut rewritten = key("a", 0);
        rewritten.fingerprint.len = 101;
        assert!(cache.get(&rewritten).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 1));
    }

    #[test]
    fn lru_eviction_by_recency() {
        let cache = ResultCache::new(2);
        cache.insert(key("a", 0), value(), 1);
        cache.insert(key("a", 10), value(), 1);
        // Touch the first so the second is the LRU.
        assert!(cache.get(&key("a", 0)).is_some());
        cache.insert(key("a", 20), value(), 1);
        assert!(cache.get(&key("a", 0)).is_some(), "recently used survives");
        assert!(cache.get(&key("a", 10)).is_none(), "LRU evicted");
        assert!(cache.get(&key("a", 20)).is_some());
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn sample_invalidation_is_scoped() {
        let cache = ResultCache::new(8);
        cache.insert(key("a", 0), value(), 3);
        cache.insert(key("a", 10), value(), 3);
        cache.insert(key("b", 0), value(), 3);
        assert_eq!(cache.invalidate_sample("a"), 2);
        assert!(cache.get(&key("a", 0)).is_none());
        assert!(cache.get(&key("b", 0)).is_some());
        let stats = cache.stats();
        assert_eq!(stats.invalidated, 2);
        assert_eq!(stats.total_cost, 3, "invalidation releases entry cost");
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = ResultCache::new(0);
        cache.insert(key("a", 0), value(), 1);
        assert!(cache.get(&key("a", 0)).is_none());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn oversize_whales_are_refused_not_admitted() {
        let cache = ResultCache::with_cost_budget(8, 100);
        // Fill with hot small entries.
        for i in 0..4 {
            cache.insert(key("a", i * 10), value(), 10);
        }
        // A whale over half the budget is refused — every small entry
        // survives.
        cache.insert(key("a", 1000), value(), 60);
        assert!(cache.get(&key("a", 1000)).is_none());
        for i in 0..4 {
            assert!(cache.get(&key("a", i * 10)).is_some(), "entry {i} evicted");
        }
        let stats = cache.stats();
        assert_eq!((stats.oversize, stats.evicted, stats.entries), (1, 0, 4));
    }

    #[test]
    fn cost_pressure_evicts_lru_until_the_budget_holds() {
        let cache = ResultCache::with_cost_budget(100, 100);
        cache.insert(key("a", 0), value(), 40);
        cache.insert(key("a", 10), value(), 40);
        // Touch the first so the second is LRU, then insert a mid-size
        // entry: exactly one eviction makes it fit (40 + 30 ≤ 100).
        assert!(cache.get(&key("a", 0)).is_some());
        cache.insert(key("a", 20), value(), 30);
        assert!(cache.get(&key("a", 0)).is_some());
        assert!(cache.get(&key("a", 10)).is_none(), "LRU paid the cost");
        assert!(cache.get(&key("a", 20)).is_some());
        let stats = cache.stats();
        assert_eq!((stats.evicted, stats.total_cost), (1, 70));
    }

    #[test]
    fn replacing_an_entry_releases_its_cost_first() {
        let cache = ResultCache::with_cost_budget(8, 100);
        cache.insert(key("a", 0), value(), 45);
        cache.insert(key("a", 10), value(), 45);
        // Re-inserting key 0 at a new cost must not evict key 10:
        // the old 45 is released before the fit check (45 → 50).
        cache.insert(key("a", 0), value(), 50);
        assert!(cache.get(&key("a", 0)).is_some());
        assert!(cache.get(&key("a", 10)).is_some());
        assert_eq!(cache.stats().total_cost, 95);
    }
}
