//! The per-file call-result cache.
//!
//! Keyed on `(sample, file identity, region)`, where file identity is
//! the on-disk [`FileFingerprint`] (length + mtime, re-probed every
//! request) plus the parsed [`content_id`](ultravc_bamlite::BalFile::content_id)
//! — so a rewritten file can never serve stale results: its fingerprint
//! differs, the old entries become unreachable, and the server drops
//! them explicitly when it rebuilds the sample's session.
//!
//! Only **complete** outcomes are cached. A partial result (deadline,
//! disconnect, contained worker failure) reflects one request's budget,
//! not the file's content, and must never be replayed to a healthier
//! request. Post-filter knobs (`min-af`) are applied at render time, so
//! they are deliberately *not* part of the key — one entry serves every
//! threshold.
//!
//! Eviction is least-recently-used by a monotonic touch tick, scanned
//! linearly on insert — capacities are tens of entries, not millions,
//! so an O(n) evict beats maintaining an ordered structure.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};
use ultravc_bamlite::FileFingerprint;
use ultravc_core::CallStats;
use ultravc_vcf::VcfRecord;

/// Cache key: which sample file (by identity, not path) and which
/// column range produced the records.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Sample name the request addressed.
    pub sample: String,
    /// On-disk identity at probe time.
    pub fingerprint: FileFingerprint,
    /// Parsed-structure identity ([`ultravc_bamlite::BalFile::content_id`]).
    pub content: u64,
    /// Region start (0-based).
    pub start: u32,
    /// Region end (exclusive).
    pub end: u32,
}

/// A cached complete call result: the driver's filtered records and
/// decision counters, shared by `Arc` so cache hits clone nothing.
#[derive(Debug)]
pub struct CachedCall {
    /// Filtered records for the region.
    pub records: Vec<VcfRecord>,
    /// Decision-path counters for the region.
    pub stats: CallStats,
}

struct Slot {
    value: Arc<CachedCall>,
    last_used: u64,
}

#[derive(Default)]
struct CacheState {
    map: HashMap<CacheKey, Slot>,
    tick: u64,
    hits: u64,
    misses: u64,
    invalidated: u64,
}

/// Point-in-time cache counters for `/stats` and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that missed (including while disabled).
    pub misses: u64,
    /// Entries dropped by invalidation (not eviction).
    pub invalidated: u64,
    /// Live entries.
    pub entries: usize,
}

/// The result cache. Capacity 0 disables it (every lookup misses,
/// inserts are dropped) — the same code path, just nothing retained.
pub struct ResultCache {
    inner: Mutex<CacheState>,
    capacity: usize,
}

impl ResultCache {
    /// A cache holding at most `capacity` results.
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            inner: Mutex::new(CacheState::default()),
            capacity,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheState> {
        // A panic while holding the lock leaves only per-entry state;
        // every entry is immutable once inserted, so recovery is safe.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Look up a complete result, refreshing its recency on hit.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<CachedCall>> {
        let mut state = self.lock();
        state.tick += 1;
        let tick = state.tick;
        match state.map.get_mut(key) {
            Some(slot) => {
                slot.last_used = tick;
                let value = Arc::clone(&slot.value);
                state.hits += 1;
                Some(value)
            }
            None => {
                state.misses += 1;
                None
            }
        }
    }

    /// Insert a complete result, evicting the least-recently-used entry
    /// if at capacity. No-op when the cache is disabled.
    pub fn insert(&self, key: CacheKey, value: Arc<CachedCall>) {
        if self.capacity == 0 {
            return;
        }
        let mut state = self.lock();
        state.tick += 1;
        let tick = state.tick;
        if state.map.len() >= self.capacity && !state.map.contains_key(&key) {
            if let Some(oldest) = state
                .map
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| k.clone())
            {
                state.map.remove(&oldest);
            }
        }
        state.map.insert(
            key,
            Slot {
                value,
                last_used: tick,
            },
        );
    }

    /// Drop every entry for `sample` (its file was rewritten). Returns
    /// how many entries were dropped.
    pub fn invalidate_sample(&self, sample: &str) -> usize {
        let mut state = self.lock();
        let before = state.map.len();
        state.map.retain(|k, _| k.sample != sample);
        let dropped = before - state.map.len();
        state.invalidated += dropped as u64;
        dropped
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let state = self.lock();
        CacheStats {
            hits: state.hits,
            misses: state.misses,
            invalidated: state.invalidated,
            entries: state.map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(sample: &str, start: u32) -> CacheKey {
        CacheKey {
            sample: sample.to_string(),
            fingerprint: FileFingerprint {
                len: 100,
                modified: None,
            },
            content: 7,
            start,
            end: start + 10,
        }
    }

    fn value() -> Arc<CachedCall> {
        Arc::new(CachedCall {
            records: Vec::new(),
            stats: CallStats::default(),
        })
    }

    #[test]
    fn hit_miss_and_counters() {
        let cache = ResultCache::new(4);
        assert!(cache.get(&key("a", 0)).is_none());
        cache.insert(key("a", 0), value());
        assert!(cache.get(&key("a", 0)).is_some());
        // Different fingerprint ⇒ different key ⇒ miss.
        let mut rewritten = key("a", 0);
        rewritten.fingerprint.len = 101;
        assert!(cache.get(&rewritten).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 1));
    }

    #[test]
    fn lru_eviction_by_recency() {
        let cache = ResultCache::new(2);
        cache.insert(key("a", 0), value());
        cache.insert(key("a", 10), value());
        // Touch the first so the second is the LRU.
        assert!(cache.get(&key("a", 0)).is_some());
        cache.insert(key("a", 20), value());
        assert!(cache.get(&key("a", 0)).is_some(), "recently used survives");
        assert!(cache.get(&key("a", 10)).is_none(), "LRU evicted");
        assert!(cache.get(&key("a", 20)).is_some());
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn sample_invalidation_is_scoped() {
        let cache = ResultCache::new(8);
        cache.insert(key("a", 0), value());
        cache.insert(key("a", 10), value());
        cache.insert(key("b", 0), value());
        assert_eq!(cache.invalidate_sample("a"), 2);
        assert!(cache.get(&key("a", 0)).is_none());
        assert!(cache.get(&key("b", 0)).is_some());
        assert_eq!(cache.stats().invalidated, 2);
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = ResultCache::new(0);
        cache.insert(key("a", 0), value());
        assert!(cache.get(&key("a", 0)).is_none());
        assert_eq!(cache.stats().entries, 0);
    }
}
