//! A minimal blocking HTTP/1.1 client — just enough to exercise the
//! server from tests and the `bench_serve` load generator without any
//! external tooling. Supports `Content-Length` and chunked bodies.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Header name/value pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Decoded body (de-chunked when chunked).
    pub body: Vec<u8>,
}

impl Response {
    /// First header value for `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// A keep-alive client connection: issues sequential `GET`s over one
/// TCP connection, reconnecting transparently when the server closes
/// it (idle timeout, per-connection request cap, shutdown) or the
/// previous exchange failed. Never pipelines — each response is read
/// fully before the next request is written, which is the reuse
/// contract the server's disconnect probe requires.
pub struct ClientConn {
    addr: SocketAddr,
    timeout: Option<Duration>,
    stream: Option<BufReader<TcpStream>>,
}

impl ClientConn {
    /// A lazily-connected client for `addr`; `timeout` bounds each
    /// socket operation.
    pub fn new(addr: SocketAddr, timeout: Option<Duration>) -> ClientConn {
        ClientConn {
            addr,
            timeout,
            stream: None,
        }
    }

    fn ensure_stream(&mut self) -> io::Result<&mut BufReader<TcpStream>> {
        if self.stream.is_none() {
            let stream = match self.timeout {
                Some(t) => TcpStream::connect_timeout(&self.addr, t)?,
                None => TcpStream::connect(self.addr)?,
            };
            stream.set_read_timeout(self.timeout)?;
            stream.set_write_timeout(self.timeout)?;
            self.stream = Some(BufReader::new(stream));
        }
        Ok(self.stream.as_mut().expect("just ensured"))
    }

    fn exchange(&mut self, path_and_query: &str) -> io::Result<Response> {
        let addr = self.addr;
        let reader = self.ensure_stream()?;
        write!(
            reader.get_mut(),
            "GET {path_and_query} HTTP/1.1\r\nHost: {addr}\r\n\r\n"
        )?;
        reader.get_mut().flush()?;
        read_response(reader)
    }

    /// Issue one `GET`, reusing the live connection when possible. A
    /// failed exchange on a *reused* connection (the server may have
    /// idled it out between requests) is retried once on a fresh one.
    pub fn get(&mut self, path_and_query: &str) -> io::Result<Response> {
        let reused = self.stream.is_some();
        let result = self.exchange(path_and_query);
        let response = match result {
            Ok(r) => r,
            Err(e) => {
                self.stream = None;
                if !reused {
                    return Err(e);
                }
                self.exchange(path_and_query)?
            }
        };
        if response
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
        {
            self.stream = None;
        }
        Ok(response)
    }
}

/// Issue one `GET` and read the full response. `timeout` bounds each
/// socket operation (connect, read, write), not the whole exchange.
pub fn http_get(
    addr: SocketAddr,
    path_and_query: &str,
    timeout: Option<Duration>,
) -> io::Result<Response> {
    let stream = match timeout {
        Some(t) => TcpStream::connect_timeout(&addr, t)?,
        None => TcpStream::connect(addr)?,
    };
    stream.set_read_timeout(timeout)?;
    stream.set_write_timeout(timeout)?;
    let mut stream = stream;
    write!(
        stream,
        "GET {path_and_query} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    read_response(&mut BufReader::new(stream))
}

/// Parse one response (status line, headers, body) from a buffered
/// stream.
pub fn read_response(stream: &mut impl BufRead) -> io::Result<Response> {
    let mut line = String::new();
    stream.read_line(&mut line)?;
    let mut parts = line.trim_end().splitn(3, ' ');
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        other => return Err(bad(format!("bad status line start: {other:?}"))),
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(format!("bad status line: {line:?}")))?;
    let mut headers = Vec::new();
    loop {
        let mut header = String::new();
        let n = stream.read_line(&mut header)?;
        let header = header.trim_end();
        if n == 0 || header.is_empty() {
            break;
        }
        if let Some((k, v)) = header.split_once(':') {
            headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
        }
    }
    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let body = if chunked {
        read_chunked(stream)?
    } else {
        let length = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok());
        match length {
            Some(n) => {
                let mut body = vec![0u8; n];
                stream.read_exact(&mut body)?;
                body
            }
            // No length, connection-close delimited.
            None => {
                let mut body = Vec::new();
                stream.read_to_end(&mut body)?;
                body
            }
        }
    };
    Ok(Response {
        status,
        headers,
        body,
    })
}

fn read_chunked(stream: &mut impl BufRead) -> io::Result<Vec<u8>> {
    let mut body = Vec::new();
    loop {
        let mut size_line = String::new();
        stream.read_line(&mut size_line)?;
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| bad(format!("bad chunk size {size_line:?}")))?;
        if size == 0 {
            // Trailing CRLF after the zero chunk (and any trailers).
            let mut rest = String::new();
            while stream.read_line(&mut rest)? > 0 && rest.trim() != "" {
                rest.clear();
            }
            return Ok(body);
        }
        let start = body.len();
        body.resize(start + size, 0);
        stream.read_exact(&mut body[start..])?;
        let mut crlf = [0u8; 2];
        stream.read_exact(&mut crlf)?;
        if &crlf != b"\r\n" {
            return Err(bad("chunk missing CRLF terminator"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_content_length_response() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nContent-Length: 3\r\n\r\nabc";
        let resp = read_response(&mut Cursor::new(raw.to_vec())).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("content-type"), Some("text/plain"));
        assert_eq!(resp.body, b"abc");
    }

    #[test]
    fn parses_chunked_response() {
        let raw = b"HTTP/1.1 206 Partial Content\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabc\r\n2\r\nde\r\n0\r\n\r\n";
        let resp = read_response(&mut Cursor::new(raw.to_vec())).unwrap();
        assert_eq!(resp.status, 206);
        assert_eq!(resp.text(), "abcde");
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_response(&mut Cursor::new(b"not http\r\n\r\n".to_vec())).is_err());
        let bad_chunk = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n";
        assert!(read_response(&mut Cursor::new(bad_chunk.to_vec())).is_err());
    }
}
