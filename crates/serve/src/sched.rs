//! Cost-aware job scheduling: the small-request-priority queue behind
//! the worker pool.
//!
//! PR 7's queue was a plain FIFO — one whole-genome 1M-depth call
//! queued ahead of a burst of small region queries head-of-line blocks
//! them all, and admission control bounded only the *count* of
//! in-flight requests, not their cost. This queue fixes both:
//!
//! * **Two-class priority.** Every job carries an up-front cost
//!   estimate (records its span covers, see
//!   [`CallSession::estimate_cost`](ultravc_core::CallSession::estimate_cost)).
//!   Jobs at or under the whale threshold (budget / [`WHALE_DIVISOR`])
//!   are *small* and always dequeue ahead of *large* jobs; within each
//!   class order stays FIFO. A large job is never starved outright: once
//!   [`BYPASS_CAP`] small jobs have overtaken the waiting large head,
//!   the large job goes next regardless.
//! * **Cost token budget.** The sum of queued + running cost is capped.
//!   A push that would exceed the cap is shed — the server turns that
//!   into `503` with a `Retry-After` computed from the queue's measured
//!   drain rate, so clients back off proportionally to the actual
//!   backlog instead of a fixed guess. A job costlier than the whole
//!   budget is still admitted when the queue is idle (a whale must be
//!   servable, just not stackable).
//!
//! The queue is `Condvar`-based (offline build — no channels with
//! priorities, no async runtime). Workers call [`CostQueue::pop`],
//! run the job, then [`CostQueue::finish`] to release the job's cost
//! tokens and feed the drain-rate estimator.

use std::collections::VecDeque;
use std::time::{Duration, Instant};
use ultravc_sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// A large job may be overtaken by at most this many small jobs before
/// it dequeues regardless — bounded priority, not starvation.
pub const BYPASS_CAP: u64 = 16;

/// Jobs costing more than `budget / WHALE_DIVISOR` are classed large.
pub const WHALE_DIVISOR: u64 = 8;

/// Completion events remembered for the drain-rate estimate.
const RATE_WINDOW: usize = 32;

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue was closed (server shutting down).
    Closed,
    /// Admitting the job would overflow the cost budget; retry after
    /// the suggested backoff (derived from the measured drain rate).
    Saturated {
        /// Suggested client backoff.
        retry_after: Duration,
    },
}

struct Entry<T> {
    item: T,
    cost: u64,
}

struct QueueState<T> {
    small: VecDeque<Entry<T>>,
    large: VecDeque<Entry<T>>,
    /// Small jobs dequeued since the current large head started waiting.
    bypassed: u64,
    /// Total cost of queued + running jobs.
    inflight_cost: u64,
    closed: bool,
    /// Recent completions (when, cost) for the drain-rate estimate.
    drained: VecDeque<(Instant, u64)>,
    /// Cost-shed pushes (for `/stats`).
    shed: u64,
}

/// The cost-aware two-class job queue. See the module docs.
pub struct CostQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
    budget: u64,
    whale_threshold: u64,
}

/// Point-in-time queue gauges for `/stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueStats {
    /// Queued (not yet running) jobs.
    pub depth: usize,
    /// Cost of queued + running jobs.
    pub inflight_cost: u64,
    /// The configured cost budget.
    pub budget: u64,
    /// Pushes shed because the budget was full.
    pub shed: u64,
}

impl<T> CostQueue<T> {
    /// A queue admitting up to `budget` total in-flight cost (min 1).
    pub fn new(budget: u64) -> CostQueue<T> {
        let budget = budget.max(1);
        CostQueue {
            state: Mutex::new(QueueState {
                small: VecDeque::new(),
                large: VecDeque::new(),
                bypassed: 0,
                inflight_cost: 0,
                closed: false,
                drained: VecDeque::new(),
                shed: 0,
            }),
            ready: Condvar::new(),
            budget,
            whale_threshold: (budget / WHALE_DIVISOR).max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueState<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueue `item` at `cost`, or shed it. A job over the whole
    /// budget is admitted only when nothing else is in flight.
    pub fn push(&self, item: T, cost: u64) -> Result<(), PushError> {
        let mut state = self.lock();
        if state.closed {
            return Err(PushError::Closed);
        }
        let would = state.inflight_cost.saturating_add(cost);
        if state.inflight_cost > 0 && would > self.budget {
            state.shed += 1;
            let excess = would - self.budget;
            let retry_after = retry_after(&state.drained, excess);
            return Err(PushError::Saturated { retry_after });
        }
        state.inflight_cost = would;
        let entry = Entry { item, cost };
        if cost <= self.whale_threshold {
            state.small.push_back(entry);
        } else {
            state.large.push_back(entry);
        }
        drop(state);
        // `ultravc_model_lost_wakeup` (model-check CI only) deliberately
        // drops this notify so the detector can prove it would catch the
        // regression; see tests/model_check.rs.
        #[cfg(not(ultravc_model_lost_wakeup))]
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeue the next job by class priority, blocking until one is
    /// available or the queue is closed *and* drained. The caller must
    /// pass the returned cost back to [`CostQueue::finish`] when done.
    pub fn pop(&self) -> Option<(T, u64)> {
        let mut state = self.lock();
        loop {
            let take_large = match (state.small.front(), state.large.front()) {
                (None, Some(_)) => true,
                (Some(_), Some(_)) => state.bypassed >= BYPASS_CAP,
                _ => false,
            };
            let entry = if take_large {
                state.bypassed = 0;
                state.large.pop_front()
            } else {
                match state.small.pop_front() {
                    Some(e) => {
                        if state.large.is_empty() {
                            state.bypassed = 0;
                        } else {
                            state.bypassed += 1;
                        }
                        Some(e)
                    }
                    None => None,
                }
            };
            if let Some(e) = entry {
                return Some((e.item, e.cost));
            }
            if state.closed {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Release a finished job's cost tokens and record the completion
    /// for the drain-rate estimate.
    pub fn finish(&self, cost: u64) {
        let mut state = self.lock();
        state.inflight_cost = state.inflight_cost.saturating_sub(cost);
        let now = Instant::now();
        state.drained.push_back((now, cost));
        while state.drained.len() > RATE_WINDOW {
            state.drained.pop_front();
        }
    }

    /// Close the queue: pushes fail with [`PushError::Closed`], poppers
    /// drain what is queued and then return `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Current gauges.
    pub fn stats(&self) -> QueueStats {
        let state = self.lock();
        QueueStats {
            depth: state.small.len() + state.large.len(),
            inflight_cost: state.inflight_cost,
            budget: self.budget,
            shed: state.shed,
        }
    }
}

/// Seconds a shed client should wait for `excess` cost to drain, from
/// the observed completion rate — clamped to `[1, 30]`; 1 s when no
/// completions have been observed yet (cold server).
fn retry_after(drained: &VecDeque<(Instant, u64)>, excess: u64) -> Duration {
    let (Some((oldest, _)), Some((newest, _))) = (drained.front(), drained.back()) else {
        return Duration::from_secs(1);
    };
    let window = newest.saturating_duration_since(*oldest).as_secs_f64();
    let total: u64 = drained.iter().map(|(_, c)| c).sum();
    // A single completion (or an instantaneous burst) has no measurable
    // window; treat the whole batch as one second of throughput.
    let rate = total as f64 / window.max(1.0);
    let secs = (excess as f64 / rate.max(1.0)).ceil();
    Duration::from_secs((secs as u64).clamp(1, 30))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn small_jobs_overtake_large_ones_fifo_within_class() {
        let q: CostQueue<&str> = CostQueue::new(800);
        // Threshold = 100: cost ≤ 100 is small.
        q.push("whale-1", 500).unwrap();
        q.push("small-1", 10).unwrap();
        q.push("small-2", 10).unwrap();
        let order: Vec<&str> = (0..3).map(|_| q.pop().unwrap().0).collect();
        assert_eq!(order, ["small-1", "small-2", "whale-1"]);
    }

    #[test]
    fn large_jobs_are_not_starved_forever() {
        let q: CostQueue<u64> = CostQueue::new(u64::MAX);
        q.push(999, u64::MAX / 2).unwrap(); // large
        let mut popped_large_after = None;
        for i in 0..(BYPASS_CAP * 2) {
            q.push(i, 1).unwrap();
            let (got, cost) = q.pop().unwrap();
            q.finish(cost);
            if got == 999 {
                popped_large_after = Some(i);
                break;
            }
        }
        let after = popped_large_after.expect("large job never dequeued");
        assert!(after <= BYPASS_CAP, "dequeued after {after} bypasses");
    }

    #[test]
    fn cost_budget_sheds_and_whales_run_alone() {
        let q: CostQueue<u32> = CostQueue::new(100);
        // A whale over the whole budget is admitted on an idle queue...
        q.push(1, 5_000).unwrap();
        // ...but nothing stacks on top of it.
        match q.push(2, 1) {
            Err(PushError::Saturated { retry_after }) => {
                assert!(retry_after >= Duration::from_secs(1));
            }
            other => panic!("expected shed, got {other:?}"),
        }
        assert_eq!(q.stats().shed, 1);
        let (_, cost) = q.pop().unwrap();
        q.finish(cost);
        assert_eq!(q.stats().inflight_cost, 0);
        q.push(3, 1).unwrap();
    }

    #[test]
    fn close_drains_then_ends() {
        let q: Arc<CostQueue<u32>> = Arc::new(CostQueue::new(100));
        q.push(1, 1).unwrap();
        q.close();
        assert_eq!(q.push(2, 1), Err(PushError::Closed));
        assert_eq!(q.pop().map(|(v, _)| v), Some(1));
        assert_eq!(q.pop(), None);
        // A blocked popper is woken by close from another thread.
        let q2 = Arc::new(CostQueue::<u32>::new(100));
        let waiter = {
            let q2 = Arc::clone(&q2);
            std::thread::spawn(move || q2.pop())
        };
        std::thread::sleep(Duration::from_millis(30));
        q2.close();
        assert_eq!(waiter.join().unwrap(), None);
    }

    #[test]
    fn retry_after_tracks_drain_rate() {
        let mut drained = VecDeque::new();
        // No history → 1 s floor.
        assert_eq!(retry_after(&drained, 1_000), Duration::from_secs(1));
        // 100 cost/s observed → 1000 excess ≈ 10 s.
        let t0 = Instant::now();
        drained.push_back((t0, 200));
        drained.push_back((t0 + Duration::from_secs(4), 200));
        let wait = retry_after(&drained, 1_000);
        assert!(
            (Duration::from_secs(5)..=Duration::from_secs(30)).contains(&wait),
            "{wait:?}"
        );
        // Huge excess clamps at 30 s.
        assert_eq!(retry_after(&drained, u64::MAX / 2), Duration::from_secs(30));
    }
}
