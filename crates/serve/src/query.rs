//! The `/call` query surface: region grammar and parameter parsing.
//!
//! Parsing is **strict**: unknown parameters are rejected rather than
//! ignored (a typo like `min_af` instead of `min-af` must not silently
//! return unfiltered calls), coordinates are validated before any work
//! is scheduled, and a non-positive `timeout-ms` is refused up front —
//! the serving-layer face of the zero-deadline guard in
//! [`RunBudget::validate`](ultravc_core::RunBudget::validate).

use std::time::Duration;

/// A parsed region: a chromosome plus an optional 0-based half-open
/// column span (`None` = the whole chromosome).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Chromosome / reference sequence name.
    pub chrom: String,
    /// `[start, end)` in 0-based columns; `None` means whole genome.
    pub span: Option<std::ops::Range<u32>>,
}

/// Parse the `CHROM[:START-END]` region grammar (htsget/samtools
/// style): coordinates are 1-based inclusive on the wire, converted to
/// 0-based half-open here. `START ≥ 1`, `END ≥ START`. A bare `CHROM`
/// addresses the whole genome.
pub fn parse_region(s: &str) -> Result<Region, String> {
    let s = s.trim();
    if s.is_empty() {
        return Err("empty region".to_string());
    }
    let Some((chrom, span)) = s.rsplit_once(':') else {
        return Ok(Region {
            chrom: s.to_string(),
            span: None,
        });
    };
    if chrom.is_empty() {
        return Err(format!("region {s:?}: empty chromosome name"));
    }
    let (start, end) = span
        .split_once('-')
        .ok_or_else(|| format!("region {s:?}: expected CHROM:START-END"))?;
    let start: u32 = start
        .parse()
        .map_err(|_| format!("region {s:?}: bad start {start:?}"))?;
    let end: u32 = end
        .parse()
        .map_err(|_| format!("region {s:?}: bad end {end:?}"))?;
    if start == 0 {
        return Err(format!("region {s:?}: coordinates are 1-based"));
    }
    if end < start {
        return Err(format!("region {s:?}: end precedes start"));
    }
    Ok(Region {
        chrom: chrom.to_string(),
        span: Some(start - 1..end),
    })
}

/// Response body format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// VCF text — byte-identical to `ultravc call --region` output.
    Vcf,
    /// One JSON object with records and run metadata.
    Json,
}

/// A validated `/call` request.
#[derive(Debug, Clone)]
pub struct CallQuery {
    /// Sample to query (`sample=`; default `"default"`).
    pub sample: String,
    /// Region to call (`region=`; required).
    pub region: Region,
    /// Allele-frequency floor applied at render time (`min-af=`).
    pub min_af: Option<f64>,
    /// Body format (`format=vcf|json`; default VCF).
    pub format: Format,
    /// Per-request deadline (`timeout-ms=`; must be positive).
    pub timeout: Option<Duration>,
    /// Whether the result cache may serve/store this request
    /// (`cache=on|off`; default on).
    pub cache: bool,
}

impl CallQuery {
    /// Parse decoded query pairs. Strict: every key must be known,
    /// `region` must be present and well-formed, numbers must parse,
    /// and `timeout-ms=0` is rejected with the zero-deadline message.
    pub fn from_pairs(pairs: &[(String, String)]) -> Result<CallQuery, String> {
        let mut sample = None;
        let mut region = None;
        let mut min_af = None;
        let mut format = Format::Vcf;
        let mut timeout = None;
        let mut cache = true;
        for (k, v) in pairs {
            match k.as_str() {
                "sample" => sample = Some(v.clone()),
                "region" => region = Some(parse_region(v)?),
                "min-af" => {
                    let f: f64 = v.parse().map_err(|_| format!("min-af: bad number {v:?}"))?;
                    if !(0.0..=1.0).contains(&f) {
                        return Err(format!("min-af: {f} outside [0, 1]"));
                    }
                    min_af = Some(f);
                }
                "format" => {
                    format = match v.as_str() {
                        "vcf" => Format::Vcf,
                        "json" => Format::Json,
                        other => return Err(format!("format: expected vcf|json, got {other:?}")),
                    }
                }
                "timeout-ms" => {
                    let ms: u64 = v
                        .parse()
                        .map_err(|_| format!("timeout-ms: bad number {v:?}"))?;
                    if ms == 0 {
                        return Err(
                            "timeout-ms must be positive: a zero deadline expires before the run starts"
                                .to_string(),
                        );
                    }
                    timeout = Some(Duration::from_millis(ms));
                }
                "cache" => {
                    cache = match v.as_str() {
                        "on" | "1" | "true" => true,
                        "off" | "0" | "false" => false,
                        other => return Err(format!("cache: expected on|off, got {other:?}")),
                    }
                }
                other => return Err(format!("unknown parameter {other:?}")),
            }
        }
        Ok(CallQuery {
            sample: sample.unwrap_or_else(|| "default".to_string()),
            region: region.ok_or("missing required parameter `region`")?,
            min_af,
            format,
            timeout,
            cache,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(kv: &[(&str, &str)]) -> Vec<(String, String)> {
        kv.iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn region_grammar() {
        assert_eq!(
            parse_region("chr:1-100").unwrap(),
            Region {
                chrom: "chr".into(),
                span: Some(0..100)
            }
        );
        // Chromosome names may themselves contain colons-free dots etc.
        assert_eq!(
            parse_region("NC_045512.2:29000-29903").unwrap().span,
            Some(28999..29903)
        );
        assert_eq!(parse_region("whole-genome").unwrap().span, None);
        // Single-column region: 1-based inclusive [5,5] → 0-based [4,5).
        assert_eq!(parse_region("c:5-5").unwrap().span, Some(4..5));
        for bad in ["", "  ", ":1-2", "c:0-5", "c:9-4", "c:x-4", "c:1-y", "c:12"] {
            assert!(parse_region(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn query_parses_full_surface() {
        let q = CallQuery::from_pairs(&pairs(&[
            ("sample", "s1"),
            ("region", "c:1-10"),
            ("min-af", "0.05"),
            ("format", "json"),
            ("timeout-ms", "250"),
            ("cache", "off"),
        ]))
        .unwrap();
        assert_eq!(q.sample, "s1");
        assert_eq!(q.region.span, Some(0..10));
        assert_eq!(q.min_af, Some(0.05));
        assert_eq!(q.format, Format::Json);
        assert_eq!(q.timeout, Some(Duration::from_millis(250)));
        assert!(!q.cache);
    }

    #[test]
    fn query_defaults() {
        let q = CallQuery::from_pairs(&pairs(&[("region", "c")])).unwrap();
        assert_eq!(q.sample, "default");
        assert_eq!(q.format, Format::Vcf);
        assert_eq!(q.min_af, None);
        assert_eq!(q.timeout, None);
        assert!(q.cache);
    }

    #[test]
    fn query_rejects_bad_input() {
        assert!(CallQuery::from_pairs(&[]).is_err()); // region required
        for bad in [
            pairs(&[("region", "c:0-5")]),
            pairs(&[("region", "c"), ("min_af", "0.1")]), // typo'd key
            pairs(&[("region", "c"), ("min-af", "1.5")]),
            pairs(&[("region", "c"), ("min-af", "x")]),
            pairs(&[("region", "c"), ("format", "xml")]),
            pairs(&[("region", "c"), ("cache", "maybe")]),
            pairs(&[("region", "c"), ("timeout-ms", "-1")]),
        ] {
            assert!(CallQuery::from_pairs(&bad).is_err(), "{bad:?}");
        }
        // The zero-deadline guard, at the query layer.
        let err =
            CallQuery::from_pairs(&pairs(&[("region", "c"), ("timeout-ms", "0")])).unwrap_err();
        assert!(err.contains("must be positive"), "{err}");
    }
}
