//! The region-call server: listener, per-connection handlers, the
//! shared calling worker pool, session management and graceful
//! shutdown.
//!
//! Threading model: one **acceptor** thread owns the listener; each
//! accepted connection gets a **handler** thread that serves a
//! keep-alive sequence of requests (parse, admission, resolve the
//! sample session, wait for and stream the result); the actual calling
//! work runs on a fixed pool of **worker** threads consuming one shared
//! cost-aware job queue ([`crate::sched::CostQueue`]) — so concurrent
//! requests against a 1M-depth region queue behind the pool instead of
//! oversubscribing the host, small requests overtake queued whales, and
//! the queue's cost budget sheds load with a drain-rate `Retry-After`
//! before the backlog grows unbounded.
//!
//! Per-sample **bulkheads** ([`crate::health::SampleHealth`]) quarantine
//! a sample whose file has gone bad: after `threshold` consecutive
//! sample-attributable failures its breaker opens, requests for it get
//! fast `503`s (healthy samples are untouched), and after a cooldown a
//! half-open probe rebuilds the session and closes the breaker on
//! success. `/health` reports per-sample breaker state; a server with
//! any open breaker reports `503 degraded`.
//!
//! While a handler waits for its worker it polls the client socket;
//! a closed socket fires the request's [`RunBudget`] cancel token, the
//! worker drains promptly (partial outcome), and neither the session
//! nor the cache ever sees the abandoned request's state.
//!
//! Shutdown (`/shutdown` or [`Server::shutdown`]) is graceful and
//! leak-checked by CI: stop accepting, cancel every in-flight call via
//! its registered cancel token (a whole-genome whale drains in
//! milliseconds instead of holding the join), join every handler, close
//! the job queue, join every worker, report counters.

use crate::cache::{CacheKey, CachedCall, ResultCache};
use crate::health::{Admission, BreakerConfig, SampleHealth};
use crate::http::{self, ChunkedBody, HttpError, Request};
use crate::query::{CallQuery, Format};
use crate::sched::{CostQueue, PushError};
use std::collections::HashMap;
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::ops::Range;
use std::path::PathBuf;
use std::time::Duration;
use ultravc_bamlite::{BalError, BalFile, FaultPlan, FileFingerprint, Interrupt, SourceTier};
use ultravc_core::driver::PrefetchMode;
use ultravc_core::supervisor::{RegionError, RegionFailure};
use ultravc_core::{CallDriver, CallOutcome, CallSession, CallStats, CallerConfig, ParallelMode};
use ultravc_core::{CancelToken, RunBudget};
use ultravc_genome::fasta::read_fasta;
use ultravc_genome::reference::ReferenceGenome;
use ultravc_parfor::Schedule;
use ultravc_sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use ultravc_sync::mpsc::{self, RecvTimeoutError};
use ultravc_sync::thread::JoinHandle;
use ultravc_sync::{Arc, Mutex, MutexGuard, PoisonError};
use ultravc_vcf::{FilterParams, FilterStatus, VcfRecord, VcfWriter};

/// How the server writes the VCF `##source=` line — kept equal to the
/// CLI's so responses are byte-identical to `ultravc call` output.
const VCF_SOURCE: &str = "ultravc-0.1";

/// Requests served over one keep-alive connection before the server
/// closes it (bounds per-connection state and recycles handler
/// threads).
const MAX_REQUESTS_PER_CONN: u32 = 64;

/// One sample the server holds open: a name clients address, the BAL
/// file, and its reference FASTA.
#[derive(Debug, Clone)]
pub struct SampleSpec {
    /// Name addressed by `?sample=`.
    pub name: String,
    /// BAL alignment file path.
    pub bal: PathBuf,
    /// Reference FASTA path.
    pub fasta: PathBuf,
    /// Seeded fault plan injected into this sample's byte source
    /// (chaos testing; `None` in production).
    pub fault: Option<FaultPlan>,
}

/// Server configuration. [`ServeConfig::new`] gives conservative
/// defaults; push samples and override knobs as needed.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`"127.0.0.1:0"` picks a free port).
    pub addr: String,
    /// Samples to hold open.
    pub samples: Vec<SampleSpec>,
    /// Calling worker pool size.
    pub workers: usize,
    /// OpenMP threads per call (the per-request parallelism; the pool
    /// bounds how many calls run at once).
    pub threads_per_call: usize,
    /// Admission bound: `/call` requests admitted concurrently
    /// (queued + running). Excess is rejected with 503.
    pub max_inflight: usize,
    /// Result-cache capacity in entries; 0 disables caching.
    pub cache_capacity: usize,
    /// Deadline applied to requests that don't send `timeout-ms`.
    pub default_timeout: Option<Duration>,
    /// Byte-source tier files are held open through.
    pub source: SourceTier,
    /// Prefetch mode for per-request scheduled I/O.
    pub prefetch: PrefetchMode,
    /// Whether the dynamic post-call filter runs (the CLI's
    /// `--no-filter` maps to `false`).
    pub filter: bool,
    /// Job-queue cost budget (summed cost of queued + running calls,
    /// in estimated records). 0 = auto: twice the costliest sample's
    /// whole-file cost, so one whale plus a round of small requests
    /// fit but whales never stack.
    pub cost_budget: u64,
    /// Result-cache cost budget. 0 = auto: eight whole-file costs, so
    /// a whole-genome result is cacheable (serve identity tests rely
    /// on it) while a parade of whales still can't purge the small-span
    /// working set.
    pub cache_cost_budget: u64,
    /// Per-sample circuit-breaker tuning.
    pub breaker: BreakerConfig,
}

impl ServeConfig {
    /// Defaults: 2 workers, 1 thread per call, 8 in-flight, 64 cache
    /// entries, no default deadline, auto tier/prefetch/cost budgets,
    /// filter on, breaker at 3 failures / 2 s cooldown.
    pub fn new(addr: impl Into<String>) -> ServeConfig {
        ServeConfig {
            addr: addr.into(),
            samples: Vec::new(),
            workers: 2,
            threads_per_call: 1,
            max_inflight: 8,
            cache_capacity: 64,
            default_timeout: None,
            source: SourceTier::Auto,
            prefetch: PrefetchMode::Auto,
            filter: true,
            cost_budget: 0,
            cache_cost_budget: 0,
            breaker: BreakerConfig::default(),
        }
    }

    /// The driver prototype every session runs: OpenMP mode (so
    /// failures and deadlines are contained per region), matching the
    /// CLI's calling pipeline exactly for result identity.
    fn driver(&self) -> CallDriver {
        CallDriver {
            config: CallerConfig::improved(),
            filter: self.filter.then(FilterParams::default),
            mode: ParallelMode::OpenMp {
                n_threads: self.threads_per_call.max(1),
                schedule: Schedule::Dynamic { chunk: 1 },
                chunk_columns: 256,
            },
            trace: false,
            prefetch: self.prefetch,
            budget: Some(RunBudget::unbounded()),
        }
    }
}

/// The immutable-once-built per-sample session state. Swapped
/// atomically (behind the slot mutex) when the on-disk file changes.
struct SessionState {
    session: CallSession,
    fingerprint: FileFingerprint,
    content: u64,
}

struct SampleSlot {
    spec: SampleSpec,
    /// `None` after a failed rebuild or a breaker trip — the next
    /// admitted request (or half-open probe) rebuilds from scratch.
    state: Mutex<Option<Arc<SessionState>>>,
    /// Live fault plan (starts as `spec.fault`, swappable at runtime
    /// via [`Server::set_fault`] for chaos testing).
    fault: Mutex<Option<FaultPlan>>,
    health: SampleHealth,
}

/// One queued call.
struct Job {
    state: Arc<SessionState>,
    region: Range<u32>,
    budget: RunBudget,
    reply: mpsc::Sender<Result<CallOutcome, BalError>>,
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    ok: AtomicU64,
    partial: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    quarantined: AtomicU64,
    breaker_trips: AtomicU64,
    recoveries: AtomicU64,
    client_errors: AtomicU64,
    not_found: AtomicU64,
    server_errors: AtomicU64,
    disconnect_cancels: AtomicU64,
    session_rebuilds: AtomicU64,
}

struct Shared {
    samples: HashMap<String, SampleSlot>,
    cache: ResultCache,
    queue: CostQueue<Job>,
    inflight: AtomicUsize,
    max_inflight: usize,
    default_timeout: Option<Duration>,
    source: SourceTier,
    driver: CallDriver,
    breaker: BreakerConfig,
    shutdown: AtomicBool,
    addr: SocketAddr,
    counters: Counters,
    /// Cancel tokens of every admitted-and-queued call, so shutdown can
    /// interrupt an in-flight whale instead of waiting it out.
    cancels: Mutex<HashMap<u64, CancelToken>>,
    next_cancel_id: AtomicU64,
}

impl Shared {
    /// Fire every registered in-flight cancel token (shutdown path).
    fn cancel_inflight(&self) {
        for token in lock_or_recover(&self.cancels).values() {
            token.cancel();
        }
    }
}

/// Final counters reported by [`Server::join`] / [`Server::shutdown`].
#[derive(Debug, Clone, Copy)]
pub struct ServerReport {
    /// `/call` requests received.
    pub requests: u64,
    /// Complete (200) responses.
    pub ok: u64,
    /// Partial (206) responses.
    pub partial: u64,
    /// Admission rejections (503), count-based and shutdown-path.
    pub rejected: u64,
    /// Cost-shed rejections (503 + drain-rate `Retry-After`).
    pub shed: u64,
    /// Fast 503s served while a sample's breaker was open.
    pub quarantined: u64,
    /// Circuit-breaker trips (Closed/HalfOpen → Open).
    pub breaker_trips: u64,
    /// Breaker recoveries back to Closed.
    pub recoveries: u64,
    /// Client errors (400/405).
    pub client_errors: u64,
    /// Unknown samples / paths (404).
    pub not_found: u64,
    /// Server-side failures (500).
    pub server_errors: u64,
    /// Requests cancelled because the client disconnected mid-call.
    pub disconnect_cancels: u64,
    /// Sessions rebuilt after an on-disk file change.
    pub session_rebuilds: u64,
    /// Result-cache counters at shutdown.
    pub cache: crate::cache::CacheStats,
}

/// A running server. Bind with [`Server::bind`]; stop with a
/// `/shutdown` request (then [`Server::join`]) or [`Server::shutdown`].
pub struct Server {
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
    addr: SocketAddr,
}

fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn load_reference(path: &std::path::Path) -> Result<ReferenceGenome, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let records = read_fasta(BufReader::new(file)).map_err(|e| e.to_string())?;
    let first = records
        .into_iter()
        .next()
        .ok_or_else(|| format!("{}: empty FASTA", path.display()))?;
    Ok(ReferenceGenome::from_seq(first.name, first.seq))
}

fn open_session(
    spec: &SampleSpec,
    fault: Option<FaultPlan>,
    driver: &CallDriver,
    source: SourceTier,
) -> Result<SessionState, String> {
    let fingerprint =
        FileFingerprint::probe(&spec.bal).map_err(|e| format!("{}: {e}", spec.bal.display()))?;
    let mut bal = BalFile::open_with(&spec.bal, source)
        .map_err(|e| format!("{}: {e}", spec.bal.display()))?;
    if let Some(plan) = fault {
        bal = bal.with_faults(plan);
    }
    let content = bal.content_id();
    let reference = Arc::new(load_reference(&spec.fasta)?);
    let session = CallSession::open(driver.clone(), reference, bal);
    Ok(SessionState {
        session,
        fingerprint,
        content,
    })
}

impl Server {
    /// Open every configured sample (failing fast on a bad path), bind
    /// the listener, and start the worker pool + acceptor.
    pub fn bind(config: ServeConfig) -> Result<Server, String> {
        if config.samples.is_empty() {
            return Err("serve: no samples configured".to_string());
        }
        let driver = config.driver();
        let mut samples = HashMap::new();
        let mut max_sample_cost = 1u64;
        for spec in &config.samples {
            if samples.contains_key(&spec.name) {
                return Err(format!("serve: duplicate sample name {:?}", spec.name));
            }
            let state = open_session(spec, spec.fault, &driver, config.source)?;
            max_sample_cost = max_sample_cost.max(state.session.total_cost());
            samples.insert(
                spec.name.clone(),
                SampleSlot {
                    spec: spec.clone(),
                    state: Mutex::new(Some(Arc::new(state))),
                    fault: Mutex::new(spec.fault),
                    health: SampleHealth::default(),
                },
            );
        }
        // Auto budgets scale with the costliest held-open file: the
        // queue fits one whale plus small traffic (whales never stack);
        // the cache can hold a whole-genome result (≤ half its budget)
        // without letting whales purge the small-span working set.
        let cost_budget = if config.cost_budget > 0 {
            config.cost_budget
        } else {
            max_sample_cost.saturating_mul(2).saturating_add(1)
        };
        let cache_cost_budget = if config.cache_cost_budget > 0 {
            config.cache_cost_budget
        } else {
            max_sample_cost.saturating_mul(8).saturating_add(1)
        };
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("bind {}: {e}", config.addr))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?;
        let shared = Arc::new(Shared {
            samples,
            cache: ResultCache::with_cost_budget(config.cache_capacity, cache_cost_budget),
            queue: CostQueue::new(cost_budget),
            inflight: AtomicUsize::new(0),
            max_inflight: config.max_inflight.max(1),
            default_timeout: config.default_timeout,
            source: config.source,
            driver,
            breaker: config.breaker,
            shutdown: AtomicBool::new(false),
            addr,
            counters: Counters::default(),
            cancels: Mutex::new(HashMap::new()),
            next_cancel_id: AtomicU64::new(0),
        });
        let mut workers = Vec::new();
        for i in 0..config.workers.max(1) {
            let shared2 = Arc::clone(&shared);
            let handle = ultravc_sync::thread::Builder::new()
                .name(format!("ultravc-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared2))
                .map_err(|e| format!("spawn worker: {e}"))?;
            workers.push(handle);
        }
        let shared_for_acceptor = Arc::clone(&shared);
        let acceptor = ultravc_sync::thread::Builder::new()
            .name("ultravc-serve-acceptor".to_string())
            .spawn(move || acceptor_loop(listener, shared_for_acceptor))
            .map_err(|e| format!("spawn acceptor: {e}"))?;
        Ok(Server {
            acceptor,
            workers,
            shared,
            addr,
        })
    }

    /// The bound address (with the real port when `:0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Swap `sample`'s live fault plan (chaos testing: inject or clear
    /// faults on a serving sample without restarting). Drops the
    /// sample's session and cache entries so the next request reopens
    /// the file under the new plan.
    pub fn set_fault(&self, sample: &str, plan: Option<FaultPlan>) -> Result<(), String> {
        let slot = self
            .shared
            .samples
            .get(sample)
            .ok_or_else(|| format!("unknown sample {sample:?}"))?;
        *lock_or_recover(&slot.fault) = plan;
        *lock_or_recover(&slot.state) = None;
        self.shared.cache.invalidate_sample(sample);
        Ok(())
    }

    /// Block until the server shuts down (a `/shutdown` request or
    /// [`Server::shutdown`] from another handle), then reap every
    /// thread and report counters.
    pub fn join(self) -> ServerReport {
        let _ = self.acceptor.join();
        // The acceptor closed the job queue on its way out; workers
        // drain and exit.
        for w in self.workers {
            let _ = w.join();
        }
        let c = &self.shared.counters;
        ServerReport {
            requests: c.requests.load(Ordering::SeqCst),
            ok: c.ok.load(Ordering::SeqCst),
            partial: c.partial.load(Ordering::SeqCst),
            rejected: c.rejected.load(Ordering::SeqCst),
            shed: c.shed.load(Ordering::SeqCst),
            quarantined: c.quarantined.load(Ordering::SeqCst),
            breaker_trips: c.breaker_trips.load(Ordering::SeqCst),
            recoveries: c.recoveries.load(Ordering::SeqCst),
            client_errors: c.client_errors.load(Ordering::SeqCst),
            not_found: c.not_found.load(Ordering::SeqCst),
            server_errors: c.server_errors.load(Ordering::SeqCst),
            disconnect_cancels: c.disconnect_cancels.load(Ordering::SeqCst),
            session_rebuilds: c.session_rebuilds.load(Ordering::SeqCst),
            cache: self.shared.cache.stats(),
        }
    }

    /// Initiate a graceful shutdown and wait for it to finish: stop
    /// accepting, cancel every in-flight call, drain, join.
    pub fn shutdown(self) -> ServerReport {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.cancel_inflight();
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        self.join()
    }
}

fn worker_loop(shared: &Shared) {
    while let Some((job, cost)) = shared.queue.pop() {
        let result = job
            .state
            .session
            .call_with_budget(job.region, Some(job.budget));
        // A vanished handler (client gone) just drops the result.
        let _ = job.reply.send(result);
        shared.queue.finish(cost);
    }
}

fn acceptor_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let shared2 = Arc::clone(&shared);
        if let Ok(handle) = ultravc_sync::thread::Builder::new()
            .name("ultravc-serve-conn".to_string())
            .spawn(move || handle_connection(&shared2, stream))
        {
            handlers.push(handle);
        }
        // Reap finished handlers so the vec (and thread table) stays
        // bounded by concurrent connections, not total served.
        handlers = handlers
            .into_iter()
            .filter_map(|h| {
                if h.is_finished() {
                    let _ = h.join();
                    None
                } else {
                    Some(h)
                }
            })
            .collect();
    }
    // In-flight calls were cancelled when the shutdown flag was set;
    // handlers drain their (partial) results and exit promptly.
    for h in handlers {
        let _ = h.join();
    }
    // Close the job queue: workers drain what's left and exit.
    shared.queue.close();
}

/// Decrements the in-flight gauge on scope exit, so early returns and
/// panics can't leak admission slots.
struct InflightGuard<'a>(&'a AtomicUsize);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Deregisters a request's cancel token on scope exit.
struct CancelReg<'a> {
    shared: &'a Shared,
    id: u64,
}

impl<'a> CancelReg<'a> {
    fn register(shared: &'a Shared, token: CancelToken) -> CancelReg<'a> {
        let id = shared.next_cancel_id.fetch_add(1, Ordering::SeqCst);
        lock_or_recover(&shared.cancels).insert(id, token);
        CancelReg { shared, id }
    }
}

impl Drop for CancelReg<'_> {
    fn drop(&mut self) {
        lock_or_recover(&self.shared.cancels).remove(&self.id);
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    // Bound header parsing; doubles as the keep-alive idle timeout — a
    // stuck or silent client cannot pin the handler.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut out = stream;
    let mut served = 0u32;
    loop {
        let request = match Request::read_from(&mut reader) {
            Ok(r) => r,
            Err(HttpError::BadRequest(msg)) => {
                shared.counters.client_errors.fetch_add(1, Ordering::SeqCst);
                let _ = respond_text(&mut out, 400, &format!("{msg}\n"), true);
                return;
            }
            // Idle timeout between requests, or the client closed.
            Err(HttpError::Io(_)) => return,
        };
        served += 1;
        let close = request.close
            || served >= MAX_REQUESTS_PER_CONN
            || shared.shutdown.load(Ordering::SeqCst);
        match (request.method.as_str(), request.path.as_str()) {
            (_, "/health") => {
                let (status, body) = health_view(shared);
                let _ = respond_text(&mut out, status, &body, close);
            }
            (_, "/stats") => {
                let body = stats_json(shared);
                let _ = http::write_response(
                    &mut out,
                    200,
                    "application/json",
                    &[],
                    body.as_bytes(),
                    close,
                );
            }
            (_, "/shutdown") => {
                shared.shutdown.store(true, Ordering::SeqCst);
                // Interrupt in-flight whales so the drain is prompt.
                shared.cancel_inflight();
                let _ = respond_text(&mut out, 200, "shutting down\n", true);
                // Wake the acceptor so it observes the flag.
                let _ = TcpStream::connect(shared.addr);
                return;
            }
            ("GET", "/call") => handle_call(shared, &mut out, &request, close),
            (_, "/call") => {
                shared.counters.client_errors.fetch_add(1, Ordering::SeqCst);
                let _ = respond_text(&mut out, 405, "use GET /call\n", close);
            }
            (_, other) => {
                shared.counters.not_found.fetch_add(1, Ordering::SeqCst);
                let _ = respond_text(
                    &mut out,
                    404,
                    &format!("no such endpoint {other:?}\n"),
                    close,
                );
            }
        }
        if close {
            return;
        }
    }
}

fn respond_text(out: &mut impl Write, status: u16, body: &str, close: bool) -> std::io::Result<()> {
    http::write_response(out, status, "text/plain", &[], body.as_bytes(), close)
}

/// Whole ceiling seconds for a `Retry-After` header (minimum 1).
fn retry_after_secs(d: Duration) -> u64 {
    (d.as_secs_f64().ceil() as u64).max(1)
}

/// Note a sample-attributable failure against `slot`'s breaker; on a
/// trip, quarantine hard: drop the session (recovery reopens the file
/// from scratch) and its cache entries.
fn note_sample_failure(shared: &Shared, slot: &SampleSlot) {
    if slot.health.record_failure(&shared.breaker) {
        shared.counters.breaker_trips.fetch_add(1, Ordering::SeqCst);
        *lock_or_recover(&slot.state) = None;
        shared.cache.invalidate_sample(&slot.spec.name);
    }
}

fn handle_call(shared: &Shared, out: &mut TcpStream, request: &Request, close: bool) {
    let c = &shared.counters;
    c.requests.fetch_add(1, Ordering::SeqCst);
    let query = match CallQuery::from_pairs(&request.query) {
        Ok(q) => q,
        Err(msg) => {
            c.client_errors.fetch_add(1, Ordering::SeqCst);
            let _ = respond_text(out, 400, &format!("{msg}\n"), close);
            return;
        }
    };
    let Some(slot) = shared.samples.get(&query.sample) else {
        c.not_found.fetch_add(1, Ordering::SeqCst);
        let _ = respond_text(
            out,
            404,
            &format!("unknown sample {:?}\n", query.sample),
            close,
        );
        return;
    };
    // Bulkhead first: a quarantined sample answers instantly without
    // touching admission, sessions, or the queue — whatever is wrong
    // with its file cannot consume shared capacity.
    let probe = match slot.health.admit(&shared.breaker) {
        Admission::Admit { probe } => probe,
        Admission::Quarantined { retry_after } => {
            c.quarantined.fetch_add(1, Ordering::SeqCst);
            let _ = http::write_response(
                out,
                503,
                "text/plain",
                &[("Retry-After", retry_after_secs(retry_after).to_string())],
                format!("sample {:?} quarantined\n", query.sample).as_bytes(),
                close,
            );
            return;
        }
    };
    // Admission before any heavy work: the gauge covers queued +
    // running calls; the guard releases the slot on every exit path.
    if shared.inflight.fetch_add(1, Ordering::SeqCst) >= shared.max_inflight {
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
        c.rejected.fetch_add(1, Ordering::SeqCst);
        slot.health.record_neutral();
        let _ = http::write_response(
            out,
            503,
            "text/plain",
            &[("Retry-After", "1".to_string())],
            b"server at capacity\n",
            close,
        );
        return;
    }
    let _inflight = InflightGuard(&shared.inflight);
    let state = match resolve_state(shared, slot) {
        Ok(s) => s,
        Err(msg) => {
            // Could not even open the file — the strongest signal the
            // sample (not the client) is broken.
            note_sample_failure(shared, slot);
            c.server_errors.fetch_add(1, Ordering::SeqCst);
            let _ = respond_text(out, 500, &format!("{msg}\n"), close);
            return;
        }
    };
    let reference = Arc::clone(state.session.reference());
    if query.region.chrom != reference.name {
        c.client_errors.fetch_add(1, Ordering::SeqCst);
        slot.health.record_neutral();
        let _ = respond_text(
            out,
            400,
            &format!(
                "unknown chromosome {:?} (sample {:?} is {:?})\n",
                query.region.chrom, query.sample, reference.name
            ),
            close,
        );
        return;
    }
    let len = reference.len() as u32;
    let span = query.region.span.clone().unwrap_or(0..len);
    if span.end > len {
        c.client_errors.fetch_add(1, Ordering::SeqCst);
        slot.health.record_neutral();
        let _ = respond_text(
            out,
            400,
            &format!(
                "region [{}, {}) out of bounds for {:?} of length {len}\n",
                span.start, span.end, reference.name
            ),
            close,
        );
        return;
    }
    let cost = state.session.estimate_cost(&span);
    let key = CacheKey {
        sample: query.sample.clone(),
        fingerprint: state.fingerprint,
        content: state.content,
        start: span.start,
        end: span.end,
    };
    // A half-open probe must exercise the real payload path — a cache
    // hit proves nothing about the file.
    if query.cache && !probe {
        if let Some(hit) = shared.cache.get(&key) {
            c.ok.fetch_add(1, Ordering::SeqCst);
            let _ = render(
                out,
                &query,
                &reference.name,
                span,
                hit.records.clone(),
                &hit.stats,
                &[],
                None,
                "hit",
                close,
            );
            return;
        }
    }
    // Arm this request's own budget: timeout → deadline, and the
    // cancel token doubles as the disconnect + shutdown signal.
    let mut budget = RunBudget::unbounded();
    budget.deadline = query.timeout.or(shared.default_timeout);
    let cancel = budget.cancel.clone();
    let _cancel_reg = CancelReg::register(shared, cancel.clone());
    let (reply_tx, reply_rx) = mpsc::channel();
    let job = Job {
        state: Arc::clone(&state),
        region: span.clone(),
        budget,
        reply: reply_tx,
    };
    match shared.queue.push(job, cost) {
        Ok(()) => {}
        Err(PushError::Closed) => {
            c.rejected.fetch_add(1, Ordering::SeqCst);
            slot.health.record_neutral();
            let _ = respond_text(out, 503, "server shutting down\n", close);
            return;
        }
        Err(PushError::Saturated { retry_after }) => {
            c.shed.fetch_add(1, Ordering::SeqCst);
            slot.health.record_neutral();
            let _ = http::write_response(
                out,
                503,
                "text/plain",
                &[("Retry-After", retry_after_secs(retry_after).to_string())],
                b"queue cost budget exhausted\n",
                close,
            );
            return;
        }
    }
    let Some(result) = await_result(out, &reply_rx, &cancel, c) else {
        // Worker pool went away mid-request (shutdown race).
        c.server_errors.fetch_add(1, Ordering::SeqCst);
        slot.health.record_neutral();
        let _ = respond_text(out, 500, "worker pool unavailable\n", close);
        return;
    };
    match result {
        Err(e) => {
            let client_fault = matches!(
                &e,
                BalError::Io(io) if io.kind() == std::io::ErrorKind::InvalidInput
            );
            if client_fault {
                c.client_errors.fetch_add(1, Ordering::SeqCst);
                slot.health.record_neutral();
                let _ = respond_text(out, 400, &format!("{e}\n"), close);
            } else {
                note_sample_failure(shared, slot);
                c.server_errors.fetch_add(1, Ordering::SeqCst);
                let _ = respond_text(out, 500, &format!("{e}\n"), close);
            }
        }
        Ok(outcome) => {
            // Contained worker panics and I/O errors indict the sample;
            // cancellations and deadline expiries indict the request.
            let sample_fault = outcome
                .partial
                .iter()
                .any(|e| matches!(e.failure, RegionFailure::Panic(_) | RegionFailure::Error(_)));
            if sample_fault {
                note_sample_failure(shared, slot);
            } else if slot.health.record_success() {
                c.recoveries.fetch_add(1, Ordering::SeqCst);
            }
            let complete = outcome.partial.is_empty() && outcome.interrupt.is_none();
            if complete {
                c.ok.fetch_add(1, Ordering::SeqCst);
                if query.cache {
                    shared.cache.insert(
                        key,
                        Arc::new(CachedCall {
                            records: outcome.records.clone(),
                            stats: outcome.stats,
                        }),
                        cost,
                    );
                }
            } else {
                c.partial.fetch_add(1, Ordering::SeqCst);
            }
            let _ = render(
                out,
                &query,
                &reference.name,
                span,
                outcome.records,
                &outcome.stats,
                &outcome.partial,
                outcome.interrupt,
                "miss",
                close,
            );
        }
    }
}

/// Re-probe the sample's on-disk identity and return a session for it,
/// rebuilding (and invalidating the sample's cache entries) when the
/// file changed under us, the previous rebuild failed, or a breaker
/// trip / fault-plan swap dropped the session.
fn resolve_state(shared: &Shared, slot: &SampleSlot) -> Result<Arc<SessionState>, String> {
    let probed = FileFingerprint::probe(&slot.spec.bal)
        .map_err(|e| format!("{}: {e}", slot.spec.bal.display()))?;
    let mut guard = lock_or_recover(&slot.state);
    if let Some(state) = guard.as_ref() {
        if state.fingerprint == probed {
            return Ok(Arc::clone(state));
        }
    }
    // Stale (or missing after a failed rebuild): drop first so a
    // failure leaves None, then rebuild against the current bytes
    // under the slot's live fault plan.
    *guard = None;
    shared.cache.invalidate_sample(&slot.spec.name);
    let fault = *lock_or_recover(&slot.fault);
    let rebuilt = Arc::new(open_session(
        &slot.spec,
        fault,
        &shared.driver,
        shared.source,
    )?);
    shared
        .counters
        .session_rebuilds
        .fetch_add(1, Ordering::SeqCst);
    *guard = Some(Arc::clone(&rebuilt));
    Ok(rebuilt)
}

/// Wait for the worker's outcome while watching the client socket: a
/// closed connection cancels the request's budget so the worker drains
/// instead of finishing doomed work. Returns `None` if the worker pool
/// dropped the job without replying.
fn await_result(
    stream: &TcpStream,
    reply: &mpsc::Receiver<Result<CallOutcome, BalError>>,
    cancel: &ultravc_core::CancelToken,
    counters: &Counters,
) -> Option<Result<CallOutcome, BalError>> {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(1)));
    let mut probe = [0u8; 256];
    let mut cancelled = false;
    loop {
        match reply.recv_timeout(Duration::from_millis(20)) {
            Ok(result) => {
                // Restore a sane timeout for the response write path.
                let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
                return Some(result);
            }
            Err(RecvTimeoutError::Timeout) => {
                if cancelled {
                    continue;
                }
                match (&*stream).read(&mut probe) {
                    // EOF: the client hung up. Cancel and keep waiting
                    // for the worker to drain (it returns a partial
                    // outcome we then fail to write — fine).
                    Ok(0) => {
                        cancel.cancel();
                        cancelled = true;
                        counters.disconnect_cancels.fetch_add(1, Ordering::SeqCst);
                    }
                    // Stray bytes (an eager client) are ignored; this
                    // is why pipelining is unsupported on keep-alive
                    // connections.
                    Ok(_) => {}
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) => {}
                    Err(_) => {
                        cancel.cancel();
                        cancelled = true;
                        counters.disconnect_cancels.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }
            Err(RecvTimeoutError::Disconnected) => return None,
        }
    }
}

fn failure_kind(f: &RegionFailure) -> &'static str {
    match f {
        RegionFailure::Panic(_) => "panic",
        RegionFailure::Error(_) => "error",
        RegionFailure::Cancelled(Interrupt::Cancelled) => "cancelled",
        RegionFailure::Cancelled(Interrupt::DeadlineExpired) => "deadline-expired",
    }
}

fn interrupt_name(i: Interrupt) -> &'static str {
    match i {
        Interrupt::Cancelled => "cancelled",
        Interrupt::DeadlineExpired => "deadline-expired",
    }
}

/// Itemize failed regions for the `X-Ultravc-Partial-Regions` header,
/// capped so a whole-genome deadline expiry can't emit a kilobyte-scale
/// header (the JSON body carries the full list).
fn partial_header(partial: &[RegionError]) -> String {
    const CAP: usize = 16;
    let mut items: Vec<String> = partial
        .iter()
        .take(CAP)
        .map(|e| {
            format!(
                "{}-{}:{}",
                e.region.start,
                e.region.end,
                failure_kind(&e.failure)
            )
        })
        .collect();
    if partial.len() > CAP {
        items.push(format!("+{}", partial.len() - CAP));
    }
    items.join(",")
}

#[allow(clippy::too_many_arguments)]
fn render(
    out: &mut TcpStream,
    query: &CallQuery,
    reference_name: &str,
    span: Range<u32>,
    mut records: Vec<VcfRecord>,
    stats: &CallStats,
    partial: &[RegionError],
    interrupt: Option<Interrupt>,
    cache_status: &str,
    close: bool,
) -> std::io::Result<()> {
    crate::apply_min_af(&mut records, query.min_af);
    let complete = partial.is_empty() && interrupt.is_none();
    let status = if complete { 200 } else { 206 };
    let mut headers = vec![("X-Ultravc-Cache", cache_status.to_string())];
    if !partial.is_empty() {
        headers.push(("X-Ultravc-Partial", partial.len().to_string()));
        headers.push(("X-Ultravc-Partial-Regions", partial_header(partial)));
    }
    if let Some(i) = interrupt {
        headers.push(("X-Ultravc-Interrupt", interrupt_name(i).to_string()));
    }
    match query.format {
        Format::Vcf => {
            http::write_chunked_head(out, status, "text/plain", &headers, close)?;
            // Stream the body: header + one record per write, framed in
            // bounded chunks — an ultra-deep response is never
            // materialized whole.
            let mut writer = VcfWriter::new(ChunkedBody::new(&mut *out));
            writer.write_header(reference_name, VCF_SOURCE)?;
            for rec in &records {
                writer.write_record(rec)?;
            }
            writer.into_inner().finish()?;
            Ok(())
        }
        Format::Json => {
            let body = json_body(
                query,
                reference_name,
                span,
                &records,
                stats,
                partial,
                interrupt,
                cache_status,
            );
            http::write_response(
                out,
                status,
                "application/json",
                &headers,
                body.as_bytes(),
                close,
            )
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn filter_text(f: &FilterStatus) -> String {
    match f {
        FilterStatus::Unfiltered => ".".to_string(),
        FilterStatus::Pass => "PASS".to_string(),
        FilterStatus::Fail(names) => names.join(";"),
    }
}

#[allow(clippy::too_many_arguments)]
fn json_body(
    query: &CallQuery,
    reference_name: &str,
    span: Range<u32>,
    records: &[VcfRecord],
    stats: &CallStats,
    partial: &[RegionError],
    interrupt: Option<Interrupt>,
    cache_status: &str,
) -> String {
    let mut body = String::with_capacity(256 + records.len() * 128);
    body.push_str(&format!(
        "{{\"sample\":\"{}\",\"region\":{{\"chrom\":\"{}\",\"start\":{},\"end\":{}}},\
         \"status\":\"{}\",\"cache\":\"{}\",\"interrupt\":{},",
        json_escape(&query.sample),
        json_escape(reference_name),
        span.start,
        span.end,
        if partial.is_empty() && interrupt.is_none() {
            "complete"
        } else {
            "partial"
        },
        cache_status,
        match interrupt {
            Some(i) => format!("\"{}\"", interrupt_name(i)),
            None => "null".to_string(),
        },
    ));
    body.push_str("\"partial\":[");
    for (i, e) in partial.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"start\":{},\"end\":{},\"kind\":\"{}\",\"detail\":\"{}\"}}",
            e.region.start,
            e.region.end,
            failure_kind(&e.failure),
            json_escape(&e.failure.to_string()),
        ));
    }
    body.push_str("],\"records\":[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        let (rf, rr, af, ar) = r.info.dp4;
        body.push_str(&format!(
            "{{\"chrom\":\"{}\",\"pos\":{},\"ref\":\"{}\",\"alt\":\"{}\",\"qual\":{:.1},\
             \"filter\":\"{}\",\"dp\":{},\"af\":{:.6},\"sb\":{:.0},\"dp4\":[{rf},{rr},{af},{ar}]}}",
            json_escape(&r.chrom),
            r.pos + 1,
            r.ref_base,
            r.alt_base,
            r.qual,
            json_escape(&filter_text(&r.filter)),
            r.info.dp,
            r.info.af,
            r.info.sb,
        ));
    }
    body.push_str(&format!(
        "],\"stats\":{{\"columns\":{},\"calls\":{}}}}}",
        stats.columns, stats.calls
    ));
    body
}

/// `/health`: `ok` + one line per sample when every breaker is closed
/// or probing; `503 degraded` when any sample is quarantined (open).
fn health_view(shared: &Shared) -> (u16, String) {
    let mut names: Vec<&String> = shared.samples.keys().collect();
    names.sort();
    let mut degraded = false;
    let mut lines = String::new();
    for name in names {
        if let Some(slot) = shared.samples.get(name) {
            let state = slot.health.state_name();
            if state == "open" {
                degraded = true;
            }
            lines.push_str(&format!("sample {name}: {state}\n"));
        }
    }
    if degraded {
        (503, format!("degraded\n{lines}"))
    } else {
        (200, format!("ok\n{lines}"))
    }
}

fn stats_json(shared: &Shared) -> String {
    let c = &shared.counters;
    let cache = shared.cache.stats();
    let queue = shared.queue.stats();
    let mut names: Vec<&String> = shared.samples.keys().collect();
    names.sort();
    let sample_list = names
        .iter()
        .filter_map(|name| shared.samples.get(*name).map(|slot| (name, slot)))
        .map(|(name, slot)| {
            let h = slot.health.stats();
            format!(
                "{{\"name\":\"{}\",\"breaker\":\"{}\",\"consecutive_failures\":{},\
                 \"trips\":{},\"quarantined\":{},\"probes\":{},\"recoveries\":{}}}",
                json_escape(name),
                h.state,
                h.consecutive_failures,
                h.trips,
                h.quarantined,
                h.probes,
                h.recoveries,
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"requests\":{},\"ok\":{},\"partial\":{},\"rejected\":{},\"shed\":{},\
         \"quarantined\":{},\"breaker_trips\":{},\"recoveries\":{},\"client_errors\":{},\
         \"not_found\":{},\"server_errors\":{},\"disconnect_cancels\":{},\
         \"session_rebuilds\":{},\"inflight\":{},\
         \"queue\":{{\"depth\":{},\"inflight_cost\":{},\"budget\":{},\"shed\":{}}},\
         \"cache\":{{\"hits\":{},\"misses\":{},\"invalidated\":{},\"entries\":{},\
         \"total_cost\":{},\"oversize\":{},\"evicted\":{}}},\
         \"samples\":[{sample_list}]}}",
        c.requests.load(Ordering::SeqCst),
        c.ok.load(Ordering::SeqCst),
        c.partial.load(Ordering::SeqCst),
        c.rejected.load(Ordering::SeqCst),
        c.shed.load(Ordering::SeqCst),
        c.quarantined.load(Ordering::SeqCst),
        c.breaker_trips.load(Ordering::SeqCst),
        c.recoveries.load(Ordering::SeqCst),
        c.client_errors.load(Ordering::SeqCst),
        c.not_found.load(Ordering::SeqCst),
        c.server_errors.load(Ordering::SeqCst),
        c.disconnect_cancels.load(Ordering::SeqCst),
        c.session_rebuilds.load(Ordering::SeqCst),
        shared.inflight.load(Ordering::SeqCst),
        queue.depth,
        queue.inflight_cost,
        queue.budget,
        queue.shed,
        cache.hits,
        cache.misses,
        cache.invalidated,
        cache.entries,
        cache.total_cost,
        cache.oversize,
        cache.evicted,
    )
}
