//! A minimal hand-rolled HTTP/1.1 layer: request parsing, response
//! writing, chunked transfer encoding. Just enough protocol for the
//! region-call server — the build is offline, so no hyper/tokio.
//!
//! Connection reuse: HTTP/1.1 requests default to keep-alive and
//! HTTP/1.0 to close, with an explicit `Connection:` header honored
//! either way — the server loops requests on one connection up to an
//! idle timeout and a max-requests cap, and each response states the
//! decision. Pipelining is deliberately unsupported (the server's
//! disconnect probe may consume bytes sent before the response
//! completes); a keep-alive client must read each response fully before
//! sending the next request. Request bodies are ignored, and the
//! request head is capped at 8 KiB (anything larger is a 431-class
//! parse error).

use std::io::{self, BufRead, Read, Write};

/// Cap on the request head (request line + headers). A region query is
/// tens of bytes; anything approaching this cap is hostile or broken.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// A parsed request head.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, uppercased as received (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path without the query string (`/call`).
    pub path: String,
    /// Decoded query parameters in request order.
    pub query: Vec<(String, String)>,
    /// Whether the client asked (or defaulted) to close the connection
    /// after this exchange: explicit `Connection: close`, or HTTP/1.0
    /// without `Connection: keep-alive`.
    pub close: bool,
}

/// Why a request head failed to parse. Maps to a 400 response.
#[derive(Debug)]
pub enum HttpError {
    /// The bytes are not a well-formed HTTP/1.1 request head.
    BadRequest(String),
    /// The connection failed mid-read.
    Io(io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            HttpError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

fn bad(msg: impl Into<String>) -> HttpError {
    HttpError::BadRequest(msg.into())
}

/// Decode `%XX` escapes and `+`-as-space in a query component.
/// Malformed escapes are an error, not passed through — a query that
/// cannot round-trip must not silently address the wrong region.
pub fn percent_decode(s: &str) -> Result<String, String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .ok_or_else(|| format!("truncated %-escape in {s:?}"))?;
                let hex = std::str::from_utf8(hex).map_err(|_| "non-ASCII %-escape")?;
                let byte =
                    u8::from_str_radix(hex, 16).map_err(|_| format!("bad %-escape %{hex}"))?;
                out.push(byte);
                i += 2;
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8(out).map_err(|_| format!("query component {s:?} is not UTF-8"))
}

/// Split and decode a raw query string into ordered pairs.
fn parse_query(raw: &str) -> Result<Vec<(String, String)>, HttpError> {
    let mut pairs = Vec::new();
    for piece in raw.split('&') {
        if piece.is_empty() {
            continue;
        }
        let (k, v) = piece.split_once('=').unwrap_or((piece, ""));
        pairs.push((
            percent_decode(k).map_err(bad)?,
            percent_decode(v).map_err(bad)?,
        ));
    }
    Ok(pairs)
}

impl Request {
    /// Read and parse one request head from `stream`. Headers are
    /// consumed through the blank line; only `Connection:` is
    /// interpreted (for keep-alive), the rest are discarded.
    pub fn read_from(stream: &mut impl BufRead) -> Result<Request, HttpError> {
        let mut head = 0usize;
        let mut line = String::new();
        stream
            .by_ref()
            .take(MAX_HEAD_BYTES as u64)
            .read_line(&mut line)?;
        head += line.len();
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            return Err(bad("empty request line"));
        }
        let mut parts = line.split_ascii_whitespace();
        let method = parts.next().ok_or_else(|| bad("missing method"))?;
        let target = parts.next().ok_or_else(|| bad("missing request target"))?;
        let http10 = match parts.next() {
            Some(v) if v.starts_with("HTTP/1.") => v == "HTTP/1.0",
            other => return Err(bad(format!("expected HTTP/1.x version, got {other:?}"))),
        };
        let (path_raw, query_raw) = target.split_once('?').unwrap_or((target, ""));
        let mut request = Request {
            method: method.to_string(),
            path: percent_decode(path_raw).map_err(bad)?,
            query: parse_query(query_raw)?,
            // HTTP/1.0 defaults to close, HTTP/1.1 to keep-alive; an
            // explicit Connection header below overrides either.
            close: http10,
        };
        // Scan headers up to the blank line (bounded by the head cap).
        loop {
            let mut header = String::new();
            let n = stream
                .by_ref()
                .take((MAX_HEAD_BYTES - head) as u64)
                .read_line(&mut header)?;
            head += n;
            if n == 0 || header == "\r\n" || header == "\n" {
                break;
            }
            if head >= MAX_HEAD_BYTES {
                return Err(bad("request head exceeds 8 KiB"));
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.trim().eq_ignore_ascii_case("connection") {
                    let value = value.trim();
                    if value.eq_ignore_ascii_case("close") {
                        request.close = true;
                    } else if value.eq_ignore_ascii_case("keep-alive") {
                        request.close = false;
                    }
                }
            }
        }
        Ok(request)
    }
}

/// Canonical reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        206 => "Partial Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn connection_value(close: bool) -> &'static str {
    if close {
        "close"
    } else {
        "keep-alive"
    }
}

/// Write a complete (non-chunked) response with a known body. `close`
/// states whether the server will close the connection after this
/// response (the caller's keep-alive decision).
pub fn write_response(
    out: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
    close: bool,
) -> io::Result<()> {
    write!(
        out,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        reason(status),
        body.len(),
        connection_value(close)
    )?;
    for (k, v) in extra_headers {
        write!(out, "{k}: {v}\r\n")?;
    }
    out.write_all(b"\r\n")?;
    out.write_all(body)?;
    out.flush()
}

/// Write the head of a chunked response; follow with a [`ChunkedBody`]
/// over the same stream and finish it. `close` as in
/// [`write_response`] — a chunked body self-delimits, so the
/// connection stays reusable when `false`.
pub fn write_chunked_head(
    out: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    close: bool,
) -> io::Result<()> {
    write!(
        out,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: {}\r\n",
        reason(status),
        connection_value(close)
    )?;
    for (k, v) in extra_headers {
        write!(out, "{k}: {v}\r\n")?;
    }
    out.write_all(b"\r\n")
}

/// A `Write` adapter that emits its input as HTTP/1.1 chunks, buffering
/// up to a flush threshold so a streaming [`ultravc_vcf::VcfWriter`]
/// writing line-by-line doesn't produce one chunk per record.
pub struct ChunkedBody<W: Write> {
    out: W,
    buf: Vec<u8>,
}

/// Flush threshold for [`ChunkedBody`]: one chunk per this many bytes.
const CHUNK_FLUSH: usize = 16 * 1024;

impl<W: Write> ChunkedBody<W> {
    /// Wrap a stream positioned just after a chunked response head.
    pub fn new(out: W) -> ChunkedBody<W> {
        ChunkedBody {
            out,
            buf: Vec::with_capacity(CHUNK_FLUSH),
        }
    }

    fn emit_chunk(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        write!(self.out, "{:x}\r\n", self.buf.len())?;
        self.out.write_all(&self.buf)?;
        self.out.write_all(b"\r\n")?;
        self.buf.clear();
        Ok(())
    }

    /// Flush pending bytes and write the terminating zero-length chunk.
    pub fn finish(mut self) -> io::Result<W> {
        self.emit_chunk()?;
        self.out.write_all(b"0\r\n\r\n")?;
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> Write for ChunkedBody<W> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(data);
        if self.buf.len() >= CHUNK_FLUSH {
            self.emit_chunk()?;
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.emit_chunk()?;
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        Request::read_from(&mut Cursor::new(raw.as_bytes().to_vec()))
    }

    #[test]
    fn parses_request_line_and_query() {
        let req = parse("GET /call?sample=a&region=chr%3A1-100&x=1+2 HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/call");
        assert_eq!(
            req.query,
            vec![
                ("sample".into(), "a".into()),
                ("region".into(), "chr:1-100".into()),
                ("x".into(), "1 2".into()),
            ]
        );
    }

    #[test]
    fn connection_negotiation_follows_version_defaults_and_headers() {
        // HTTP/1.1 defaults to keep-alive, 1.0 to close.
        assert!(!parse("GET /x HTTP/1.1\r\n\r\n").unwrap().close);
        assert!(parse("GET /x HTTP/1.0\r\n\r\n").unwrap().close);
        // Explicit header wins either way, case-insensitively.
        assert!(
            parse("GET /x HTTP/1.1\r\nConnection: Close\r\n\r\n")
                .unwrap()
                .close
        );
        assert!(
            !parse("GET /x HTTP/1.0\r\nconnection: Keep-Alive\r\n\r\n")
                .unwrap()
                .close
        );
    }

    #[test]
    fn rejects_malformed_heads() {
        assert!(parse("").is_err());
        assert!(parse("\r\n").is_err());
        assert!(parse("GET\r\n\r\n").is_err());
        assert!(parse("GET /x SPDY/9\r\n\r\n").is_err());
        assert!(parse("GET /x?a=%zz HTTP/1.1\r\n\r\n").is_err());
        assert!(parse("GET /x?a=%2 HTTP/1.1\r\n\r\n").is_err());
        let giant = format!(
            "GET /x HTTP/1.1\r\nA: {}\r\n\r\n",
            "y".repeat(MAX_HEAD_BYTES)
        );
        assert!(parse(&giant).is_err());
    }

    #[test]
    fn percent_decoding_round_trips() {
        assert_eq!(percent_decode("a%3Ab%2Dc").unwrap(), "a:b-c");
        assert_eq!(percent_decode("plain").unwrap(), "plain");
        assert_eq!(percent_decode("a+b").unwrap(), "a b");
        assert!(percent_decode("%GG").is_err());
    }

    #[test]
    fn chunked_body_frames_and_terminates() {
        let mut raw = Vec::new();
        let mut body = ChunkedBody::new(&mut raw);
        body.write_all(b"hello ").unwrap();
        body.write_all(b"world").unwrap();
        body.finish().unwrap();
        assert_eq!(raw, b"b\r\nhello world\r\n0\r\n\r\n");
        // Empty body is just the terminator.
        let mut raw = Vec::new();
        ChunkedBody::new(&mut raw).finish().unwrap();
        assert_eq!(raw, b"0\r\n\r\n");
    }

    #[test]
    fn response_head_shape() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            400,
            "text/plain",
            &[("X-Test", "1".to_string())],
            b"nope\n",
            true,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 400 Bad Request\r\n"));
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("X-Test: 1\r\n"));
        assert!(text.ends_with("\r\n\r\nnope\n"));
        // Keep-alive responses state it.
        let mut out = Vec::new();
        write_response(&mut out, 200, "text/plain", &[], b"ok", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"));
        let mut out = Vec::new();
        write_chunked_head(&mut out, 200, "text/plain", &[], false).unwrap();
        assert!(String::from_utf8(out)
            .unwrap()
            .contains("Connection: keep-alive\r\n"));
    }
}
