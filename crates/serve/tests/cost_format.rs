//! Regression: admission pricing is format-independent. The scheduler
//! prices a region from the BAL index alone (`n_records` sums over
//! overlapping blocks), and the index schema is identical across
//! v1/v2/v3 — so the same logical content must produce the same
//! [`CallDriver::estimate_region_cost`] and the same whale/small
//! classification no matter which on-disk format serves it. A format
//! that perturbed block boundaries or index extents would silently
//! reshuffle queue priority on upgrade; this pins that it cannot.

use ultravc_bamlite::{BalFile, BalWriter, Cigar, Flags, FormatVersion, Record};
use ultravc_core::CallDriver;
use ultravc_genome::phred::Phred;
use ultravc_genome::sequence::Seq;
use ultravc_serve::sched::WHALE_DIVISOR;

/// A deterministic read stack: clustered pileups around a few hot spots
/// plus a sparse tail, so regions differ meaningfully in cost.
fn sample_records(n: usize) -> Vec<Record> {
    let mut recs: Vec<(u32, usize)> = (0..n)
        .map(|i| {
            let pos = if i % 3 == 0 {
                (i % 7) as u32 * 40
            } else {
                (i * 11 % 4000) as u32
            };
            (pos, i)
        })
        .collect();
    recs.sort_unstable();
    recs.into_iter()
        .enumerate()
        .map(|(id, (pos, i))| {
            let len = 8 + (i % 24);
            let bases: Vec<u8> = (0..len).map(|j| b"ACGT"[(i + j) % 4]).collect();
            let seq = Seq::from_ascii(&bases).unwrap();
            let quals: Vec<Phred> = (0..len)
                .map(|j| Phred::new(20 + ((j % 4) * 7) as u8))
                .collect();
            let cigar = if i % 5 == 0 && len >= 6 {
                Cigar::parse(&format!("2S{}M1D2M", len - 4)).unwrap()
            } else {
                Cigar::full_match(len as u32)
            };
            Record::new(id as u64, pos, 60, Flags::none(), seq, quals, cigar).unwrap()
        })
        .collect()
}

fn encode(records: &[Record], version: FormatVersion) -> BalFile {
    let mut w = BalWriter::with_options(32, version);
    for rec in records.iter().cloned() {
        w.push(rec).unwrap();
    }
    w.finish()
}

#[test]
fn cost_estimates_and_whale_class_are_format_independent() {
    let records = sample_records(600);
    let files: Vec<(FormatVersion, BalFile)> =
        [FormatVersion::V1, FormatVersion::V2, FormatVersion::V3]
            .into_iter()
            .map(|v| (v, encode(&records, v)))
            .collect();

    // Same logical blocks: the index extents and counts are identical,
    // which is what makes everything below hold by construction.
    let (_, baseline) = &files[1];
    for (v, f) in &files {
        assert_eq!(f.n_blocks(), baseline.n_blocks(), "{v:?}");
        for (a, b) in f.index().iter().zip(baseline.index()) {
            assert_eq!(
                (a.min_pos, a.max_end, a.n_records),
                (b.min_pos, b.max_end, b.n_records),
                "{v:?} index extents"
            );
        }
    }

    // Pricing: identical for every probe region, across all formats.
    let regions: Vec<std::ops::Range<u32>> = vec![
        0..u32::MAX,  // whole file (the total_cost shape)
        0..1,         // single hot column
        0..300,       // the clustered head
        1000..1001,   // sparse single column
        2000..4000,   // wide sparse span
        4000..4001,   // past most reads
        5_000..6_000, // empty span — floor cost of 1
    ];
    let costs: Vec<u64> = regions
        .iter()
        .map(|r| CallDriver::estimate_region_cost(baseline, r))
        .collect();
    for (v, f) in &files {
        for (region, want) in regions.iter().zip(&costs) {
            assert_eq!(
                CallDriver::estimate_region_cost(f, region),
                *want,
                "{v:?} cost for {region:?}"
            );
        }
    }

    // Whale/small classification at a realistic budget (the whole-file
    // cost, as `serve` sizes it): identical class per region, and the
    // probe set must actually span both classes or the check is vacuous.
    let budget = costs[0];
    let threshold = (budget / WHALE_DIVISOR).max(1);
    let classes: Vec<bool> = costs.iter().map(|c| *c <= threshold).collect();
    assert!(
        classes.iter().any(|&small| small) && classes.iter().any(|&small| !small),
        "probe regions must cover both small jobs and whales (costs {costs:?}, threshold {threshold})"
    );
    for (v, f) in &files {
        for (region, want_small) in regions.iter().zip(&classes) {
            let small = CallDriver::estimate_region_cost(f, region) <= threshold;
            assert_eq!(small, *want_small, "{v:?} class for {region:?}");
        }
    }
}
