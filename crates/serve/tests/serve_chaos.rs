//! Server chaos suite: seeded fault plans injected into live serving
//! sessions, driven by concurrent clients.
//!
//! The contract under test (the serving layer's failure model):
//!
//! * Faults on one sample never touch another: with sample A on a dead
//!   device, sample B's responses stay **bitwise identical** to fresh
//!   CLI runs.
//! * A faulted sample trips its circuit breaker within the configured
//!   threshold, quarantined requests answer fast `503`s, `/health`
//!   reports `degraded`, and once the fault clears a half-open probe
//!   rebuilds the session and recovers — automatically.
//! * Transient faults (EIO) are retried away invisibly; contained
//!   panics are one-shot; truncation is fatal per-region but spans
//!   below the truncation point still serve exactly.
//! * Small requests queued behind a whale complete before a second
//!   queued whale (cost-aware two-class scheduling), and pushing cost
//!   past the queue budget sheds with a `Retry-After`.
//! * `/shutdown` during an in-flight whale cancels it promptly instead
//!   of waiting it out.
//! * No scenario leaks a thread.

use std::fs;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use proptest::prelude::*;
use ultravc_bamlite::{BalFile, FaultPlan, SourceTier};
use ultravc_core::driver::{CallDriver, ParallelMode, PrefetchMode};
use ultravc_core::{CallerConfig, RunBudget};
use ultravc_genome::fasta::{read_fasta, write_fasta, FastaRecord};
use ultravc_genome::reference::{GenomeParams, ReferenceGenome};
use ultravc_readsim::dataset::DatasetSpec;
use ultravc_serve::{http_get, SampleSpec, ServeConfig, Server};
use ultravc_vcf::{write_vcf, FilterParams};

/// Per-test scratch directory, wiped on entry.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ultravc-chaos-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Simulate an ultra-deep fixture and write its `.bal` + `.fa`. Short
/// reads (`read_len`) keep the record count high enough that the file
/// spans several 1024-record blocks — the granularity fault offsets and
/// cost estimates work at.
fn write_fixture(
    dir: &Path,
    seed: u64,
    genome_len: usize,
    depth: f64,
    read_len: usize,
) -> (PathBuf, PathBuf, String) {
    let reference = ReferenceGenome::sars_cov_2_like(GenomeParams::with_length(genome_len), seed);
    let ds = DatasetSpec::new("chaos", depth, seed)
        .with_read_len(read_len)
        .with_variants(8, 0.005, 0.05)
        .simulate(&reference);
    let bal = dir.join(format!("s{seed}.bal"));
    ds.alignments.write_to(&bal).unwrap();
    let mut buf = Vec::new();
    write_fasta(
        &mut buf,
        &[FastaRecord {
            name: reference.name.clone(),
            seq: reference.seq.clone(),
        }],
        70,
    )
    .unwrap();
    let fa = dir.join(format!("s{seed}.fa"));
    fs::write(&fa, buf).unwrap();
    (bal, fa, reference.name)
}

/// What a fresh `ultravc call --region` process would print for this
/// span — the identity baseline for every served response.
fn fresh_cli_vcf(bal: &Path, fa: &Path, span: Option<Range<u32>>) -> String {
    let records = read_fasta(std::io::BufReader::new(fs::File::open(fa).unwrap())).unwrap();
    let first = records.into_iter().next().unwrap();
    let reference = ReferenceGenome::from_seq(first.name, first.seq);
    let bal = BalFile::open_with(bal, SourceTier::Auto).unwrap();
    let span = span.unwrap_or(0..reference.len() as u32);
    let driver = CallDriver {
        config: CallerConfig::improved(),
        filter: Some(FilterParams::default()),
        mode: ParallelMode::Sequential,
        trace: false,
        prefetch: PrefetchMode::Auto,
        budget: Some(RunBudget::unbounded()),
    };
    let outcome = driver.run_region(&reference, &bal, span).unwrap();
    write_vcf(&reference.name, "ultravc-0.1", &outcome.records)
}

fn sample(name: &str, bal: &Path, fa: &Path, fault: Option<FaultPlan>) -> SampleSpec {
    SampleSpec {
        name: name.to_string(),
        bal: bal.to_path_buf(),
        fasta: fa.to_path_buf(),
        fault,
    }
}

/// A short-cooldown breaker so quarantine/recovery cycles fit a test.
fn fast_breaker(config: &mut ServeConfig) {
    config.breaker.threshold = 3;
    config.breaker.cooldown = Duration::from_millis(200);
}

fn get(server: &Server, path: &str) -> ultravc_serve::Response {
    http_get(server.local_addr(), path, Some(Duration::from_secs(60))).unwrap()
}

/// Extract the queue depth gauge from the `/stats` JSON (hand-rolled
/// JSON, hand-rolled scrape).
fn queue_depth(server: &Server) -> usize {
    let stats = get(server, "/stats").text();
    let tail = stats
        .split("\"queue\":{\"depth\":")
        .nth(1)
        .unwrap_or_else(|| panic!("no queue gauge in {stats}"))
        .to_string();
    tail.chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

/// Poll until the queue holds exactly `depth` waiting jobs.
fn wait_for_depth(server: &Server, depth: usize) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while queue_depth(server) != depth {
        assert!(
            Instant::now() < deadline,
            "queue never reached depth {depth} (at {})",
            queue_depth(server)
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Live OS threads of this process (the leak check CI gates on).
fn live_threads() -> usize {
    fs::read_dir("/proc/self/task")
        .map(|d| d.count())
        .unwrap_or(0)
}

fn assert_no_leaked_threads(baseline: usize) {
    let t0 = Instant::now();
    while t0.elapsed() < Duration::from_secs(5) {
        if live_threads() <= baseline {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!(
        "leaked threads: {} live vs baseline {}",
        live_threads(),
        baseline
    );
}

/// The acceptance scenario: sample A on a dead device, sample B clean,
/// concurrent clients on both. B is bitwise identical throughout; A
/// degrades to fast 503s within the breaker threshold, `/health` goes
/// degraded, and once the fault clears A recovers automatically.
#[test]
fn dead_device_quarantines_one_sample_and_spares_the_other() {
    let dir = scratch("dead");
    let (bal_a, fa_a, chrom_a) = write_fixture(&dir, 41, 500, 250.0, 50);
    let (bal_b, fa_b, chrom_b) = write_fixture(&dir, 43, 500, 250.0, 50);
    let threads_before = live_threads();

    let mut config = ServeConfig::new("127.0.0.1:0");
    // Dead device: every payload read fails with EIO, permanently.
    config.samples.push(sample(
        "a",
        &bal_a,
        &fa_a,
        Some(FaultPlan::parse("fail_after=0").unwrap()),
    ));
    config.samples.push(sample("b", &bal_b, &fa_b, None));
    fast_breaker(&mut config);
    // This test is about bulkheads, not shedding: a budget far above
    // any stack of whole-genome calls keeps the queue out of the way.
    config.cost_budget = 1 << 40;
    let server = Arc::new(Server::bind(config).unwrap());

    // Clients hammer B concurrently while A grinds to quarantine.
    let expected_b = fresh_cli_vcf(&bal_b, &fa_b, None);
    let b_clients: Vec<_> = (0..3)
        .map(|_| {
            let server = Arc::clone(&server);
            let chrom_b = chrom_b.clone();
            std::thread::spawn(move || {
                (0..4)
                    .map(|_| {
                        get(
                            &server,
                            &format!("/call?sample=b&region={chrom_b}&cache=off"),
                        )
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();

    // A: the supervised runs contain the dead device per region (206,
    // nothing but failures) until the third sample failure trips the
    // breaker; from then on A answers instantly with 503.
    for nth in 0..3 {
        let resp = get(
            &server,
            &format!("/call?sample=a&region={chrom_a}&cache=off"),
        );
        assert_eq!(resp.status, 206, "pre-trip call {nth}: {}", resp.text());
        assert!(resp.header("x-ultravc-partial").is_some(), "call {nth}");
    }
    let quarantined = get(&server, &format!("/call?sample=a&region={chrom_a}"));
    assert_eq!(quarantined.status, 503, "{}", quarantined.text());
    assert!(quarantined.text().contains("quarantined"));
    assert!(quarantined.header("retry-after").is_some());

    // Quarantined responses are *fast* — no retry grinding.
    let t0 = Instant::now();
    for _ in 0..10 {
        let resp = get(&server, &format!("/call?sample=a&region={chrom_a}"));
        assert_eq!(resp.status, 503);
    }
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "10 quarantined calls took {:?}",
        t0.elapsed()
    );

    // /health: degraded overall, per-sample states itemized.
    let health = get(&server, "/health");
    assert_eq!(health.status, 503);
    assert!(health.text().starts_with("degraded\n"), "{}", health.text());
    assert!(health.text().contains("sample a: open"));
    assert!(health.text().contains("sample b: closed"));

    // B was bitwise perfect the whole time.
    for client in b_clients {
        for resp in client.join().unwrap() {
            assert_eq!(resp.status, 200);
            assert_eq!(resp.text(), expected_b, "sample B must be untouched");
        }
    }

    // The device comes back: clear the fault, wait out the cooldown —
    // the next request is the half-open probe, rebuilds the session,
    // and serves the exact clean result.
    server.set_fault("a", None).unwrap();
    std::thread::sleep(Duration::from_millis(250));
    let recovered = get(&server, &format!("/call?sample=a&region={chrom_a}"));
    assert_eq!(recovered.status, 200, "{}", recovered.text());
    assert_eq!(recovered.text(), fresh_cli_vcf(&bal_a, &fa_a, None));
    let health = get(&server, "/health");
    assert_eq!(health.status, 200);
    assert!(health.text().starts_with("ok\n"));
    assert!(health.text().contains("sample a: closed"));

    let report = Arc::try_unwrap(server).ok().unwrap().shutdown();
    assert!(report.breaker_trips >= 1, "breaker must have tripped");
    assert!(report.quarantined >= 11);
    assert!(report.recoveries >= 1, "breaker must have recovered");
    assert_eq!(report.client_errors, 0);
    assert_no_leaked_threads(threads_before);
}

/// Transient EIO under the serving layer: retried away by each
/// request's budget, responses bitwise identical, breaker untouched.
#[test]
fn transient_eio_is_invisible_and_never_trips_the_breaker() {
    let dir = scratch("transient");
    let (bal, fa, chrom) = write_fixture(&dir, 47, 500, 250.0, 50);
    let mut config = ServeConfig::new("127.0.0.1:0");
    config.samples.push(sample(
        "s",
        &bal,
        &fa,
        Some(FaultPlan::parse("seed=20210817,eio=0.05").unwrap()),
    ));
    fast_breaker(&mut config);
    let server = Server::bind(config).unwrap();

    for span in [(1u32, 200u32), (151, 400), (1, 500)] {
        let wire = format!("{chrom}:{}-{}", span.0, span.1);
        let expected = fresh_cli_vcf(&bal, &fa, Some(span.0 - 1..span.1));
        let resp = get(&server, &format!("/call?sample=s&region={wire}&cache=off"));
        assert_eq!(resp.status, 200, "{wire}: {}", resp.text());
        assert_eq!(
            resp.text(),
            expected,
            "{wire}: transients must be invisible"
        );
    }
    assert!(get(&server, "/health").text().starts_with("ok\n"));
    let report = server.shutdown();
    assert_eq!(report.breaker_trips, 0);
    assert_eq!(report.partial, 0);
}

/// A contained worker panic is one-shot: the first request reports it
/// as a partial region, the second serves the complete exact result,
/// and one failure is not enough to trip the breaker.
#[test]
fn contained_panic_is_one_shot_and_does_not_quarantine() {
    let dir = scratch("panic");
    let (bal, fa, chrom) = write_fixture(&dir, 53, 500, 250.0, 50);
    // Panic on the first read of a mid-file block: one chunk trips it.
    let probe = BalFile::open_with(&bal, SourceTier::Auto).unwrap();
    let mid = probe.index()[probe.n_blocks() / 2].offset;
    drop(probe);
    let mut config = ServeConfig::new("127.0.0.1:0");
    config.samples.push(sample(
        "s",
        &bal,
        &fa,
        Some(FaultPlan::parse(&format!("panic_at={mid}")).unwrap()),
    ));
    fast_breaker(&mut config);
    let server = Server::bind(config).unwrap();

    let first = get(&server, &format!("/call?sample=s&region={chrom}&cache=off"));
    assert_eq!(first.status, 206, "{}", first.text());
    assert!(first
        .header("x-ultravc-partial-regions")
        .is_some_and(|v| v.contains("panic")));
    assert!(first.text().starts_with("##fileformat=VCF"));

    // Trigger disarmed: the same session now serves the exact result.
    let second = get(&server, &format!("/call?sample=s&region={chrom}&cache=off"));
    assert_eq!(second.status, 200, "{}", second.text());
    assert_eq!(second.text(), fresh_cli_vcf(&bal, &fa, None));

    let report = server.shutdown();
    assert_eq!(report.breaker_trips, 0, "one failure must not trip");
    assert_eq!(report.partial, 1);
}

/// Truncation: spans under the truncation point keep serving exactly;
/// whole-genome requests fail per-region until the breaker opens, which
/// then quarantines the whole sample (bulkheads are per-sample).
#[test]
fn truncation_trips_the_breaker_and_quarantines_the_whole_sample() {
    let dir = scratch("trunc");
    let (bal, fa, chrom) = write_fixture(&dir, 59, 500, 250.0, 50);
    let probe = BalFile::open_with(&bal, SourceTier::Auto).unwrap();
    let cut = probe.index()[probe.n_blocks() - 1].offset;
    drop(probe);
    let mut config = ServeConfig::new("127.0.0.1:0");
    config.samples.push(sample(
        "s",
        &bal,
        &fa,
        Some(FaultPlan::parse(&format!("truncate_at={cut}")).unwrap()),
    ));
    fast_breaker(&mut config);
    let server = Server::bind(config).unwrap();

    // An early span never touches the truncated tail: exact result.
    let early_wire = format!("{chrom}:1-100");
    let early = get(
        &server,
        &format!("/call?sample=s&region={early_wire}&cache=off"),
    );
    assert_eq!(early.status, 200, "{}", early.text());
    assert_eq!(early.text(), fresh_cli_vcf(&bal, &fa, Some(0..100)));

    // Whole-genome requests hit the cut and fail per-region; the third
    // trips the breaker — after which even early spans are quarantined.
    for _ in 0..3 {
        let resp = get(&server, &format!("/call?sample=s&region={chrom}&cache=off"));
        assert_eq!(resp.status, 206, "{}", resp.text());
    }
    assert_eq!(
        get(&server, &format!("/call?sample=s&region={early_wire}")).status,
        503,
        "quarantine is per-sample, not per-span"
    );

    // Recovery after the writer finishes (fault cleared).
    server.set_fault("s", None).unwrap();
    std::thread::sleep(Duration::from_millis(250));
    let back = get(&server, &format!("/call?sample=s&region={chrom}"));
    assert_eq!(back.status, 200, "{}", back.text());
    assert_eq!(back.text(), fresh_cli_vcf(&bal, &fa, None));
    let report = server.shutdown();
    assert!(report.breaker_trips >= 1);
    assert!(report.recoveries >= 1);
}

/// The scheduling contract: with one worker busy on a whale and a
/// second whale queued, a later small request still completes first —
/// and stacking cost past the budget sheds with a drain-rate
/// `Retry-After`.
#[test]
fn small_requests_overtake_a_queued_whale_and_excess_cost_is_shed() {
    let dir = scratch("priority");
    // Short reads → several blocks, so a 30-column span prices at a
    // small fraction of the whole file.
    let (bal, fa, chrom) = write_fixture(&dir, 61, 400, 400.0, 25);
    let (total, small_cost) = {
        let probe = BalFile::open_with(&bal, SourceTier::Auto).unwrap();
        let small: u64 = probe
            .blocks_overlapping(0, 30)
            .iter()
            .map(|&i| probe.index()[i].n_records as u64)
            .sum();
        (probe.n_records(), small)
    };
    let mut config = ServeConfig::new("127.0.0.1:0");
    // Slow device: a few ms per read, so a whole-genome whale holds the
    // single worker long enough to observe queue order.
    config.samples.push(sample(
        "s",
        &bal,
        &fa,
        Some(FaultPlan::parse("latency_us=5000").unwrap()),
    ));
    config.workers = 1;
    config.cache_capacity = 0;
    // A budget that admits whale + whale + small but sheds one more
    // whale, while classifying whole-genome (cost = total) as large and
    // the 30-column span as small (≤ budget/8). The assert pins the
    // arithmetic to the fixture's actual block layout.
    config.cost_budget = (2 * total + small_cost + 1).max(8 * small_cost + 1);
    assert!(
        config.cost_budget <= 3 * total,
        "fixture block layout too coarse: 30-column span costs {small_cost} of {total}"
    );
    let server = Arc::new(Server::bind(config).unwrap());

    let whale = |server: &Arc<Server>, chrom: &str| {
        let server = Arc::clone(server);
        let chrom = chrom.to_string();
        std::thread::spawn(move || {
            let resp = get(&server, &format!("/call?sample=s&region={chrom}&cache=off"));
            (resp.status, Instant::now())
        })
    };
    // Whale 1 starts running (popped: depth back to 0, one admitted)...
    let w1 = whale(&server, &chrom);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let depth = queue_depth(&server);
        let running = get(&server, "/stats").text().contains("\"inflight\":1");
        if depth == 0 && running {
            break;
        }
        assert!(Instant::now() < deadline, "whale 1 never started");
        std::thread::sleep(Duration::from_millis(5));
    }
    // ...whale 2 queues behind it...
    let w2 = whale(&server, &chrom);
    wait_for_depth(&server, 1);
    // ...then a small request arrives last but dequeues first.
    let small = {
        let server = Arc::clone(&server);
        let chrom = chrom.clone();
        std::thread::spawn(move || {
            let resp = get(
                &server,
                &format!("/call?sample=s&region={chrom}:1-30&cache=off"),
            );
            (resp.status, Instant::now())
        })
    };
    wait_for_depth(&server, 2);

    // With whale + whale + small in flight, one more whale exceeds the
    // budget and is shed with a drain-rate Retry-After.
    let shed = get(&server, &format!("/call?sample=s&region={chrom}&cache=off"));
    assert_eq!(shed.status, 503, "{}", shed.text());
    assert!(shed.text().contains("cost budget"), "{}", shed.text());
    assert!(shed.header("retry-after").is_some());

    let (w1_status, _) = w1.join().unwrap();
    let (w2_status, w2_done) = w2.join().unwrap();
    let (small_status, small_done) = small.join().unwrap();
    assert_eq!((w1_status, w2_status, small_status), (200, 200, 200));
    assert!(
        small_done < w2_done,
        "small request must complete before the queued whale"
    );
    let report = Arc::try_unwrap(server).ok().unwrap().shutdown();
    assert!(report.shed >= 1);
    assert_eq!(report.server_errors, 0);
}

/// The `/shutdown` regression: a whale in flight is cancelled via its
/// registered token, so shutdown completes promptly with a partial
/// outcome instead of waiting out the whole call.
#[test]
fn shutdown_cancels_an_inflight_whale_promptly() {
    let dir = scratch("shutdown");
    let (bal, fa, chrom) = write_fixture(&dir, 67, 400, 250.0, 50);
    let threads_before = live_threads();
    let mut config = ServeConfig::new("127.0.0.1:0");
    // ~20 ms per read: a whole-genome call takes many seconds if not
    // cancelled — the promptness bound below would trip.
    config.samples.push(sample(
        "s",
        &bal,
        &fa,
        Some(FaultPlan::parse("latency_us=20000").unwrap()),
    ));
    config.workers = 1;
    config.cache_capacity = 0;
    let server = Arc::new(Server::bind(config).unwrap());

    let whale = {
        let server = Arc::clone(&server);
        let chrom = chrom.clone();
        std::thread::spawn(move || {
            get(&server, &format!("/call?sample=s&region={chrom}&cache=off"))
        })
    };
    // Wait until the whale is admitted and on (or headed for) the
    // worker; cancellation covers both queued and running jobs.
    let deadline = Instant::now() + Duration::from_secs(30);
    while !get(&server, "/stats").text().contains("\"inflight\":1") {
        assert!(Instant::now() < deadline, "whale never started");
        std::thread::sleep(Duration::from_millis(5));
    }

    let t0 = Instant::now();
    assert_eq!(get(&server, "/shutdown").status, 200);
    // The whale drains as a partial (cancelled) response, not a hang or
    // a dropped connection mid-body.
    let resp = whale.join().unwrap();
    let report = Arc::try_unwrap(server).ok().unwrap().join();
    let drained = t0.elapsed();
    assert!(
        drained < Duration::from_secs(5),
        "shutdown waited out the whale: {drained:?}"
    );
    assert_eq!(resp.status, 206, "{}", resp.text());
    assert!(
        resp.header("x-ultravc-interrupt") == Some("cancelled")
            || resp.header("x-ultravc-partial").is_some(),
        "whale response must be marked interrupted"
    );
    assert!(report.partial >= 1);
    assert_no_leaked_threads(threads_before);
}

/// Shared fixture for the proptest sweep (simulated once per process).
fn sweep_fixture() -> &'static (PathBuf, PathBuf, String) {
    static FIXTURE: OnceLock<(PathBuf, PathBuf, String)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dir = scratch("sweep");
        write_fixture(&dir, 71, 300, 150.0, 25)
    })
}

/// Strategy for a random fault plan drawn from the classes the serving
/// layer must absorb (bit-flips excluded: silent corruption breaks the
/// identity contract by design and is pinned in bamlite's own tests).
fn plan_strategy() -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        prop::sample::select(vec![0.0, 0.05, 0.15]),
        prop::sample::select(vec![0.0, 0.05]),
        prop::sample::select(vec![None, Some(0u64), Some(1 << 12)]),
        prop::sample::select(vec![None, Some(1usize << 12)]),
        prop::sample::select(vec![None, Some(1usize << 12)]),
    )
        .prop_map(
            |(seed, eio, short, fail_after, truncate_at, panic_at)| FaultPlan {
                seed,
                eio,
                short,
                fail_after,
                truncate_at,
                panic_at,
                ..FaultPlan::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The wedge hunt: any fault plan, a concurrent burst of mixed
    /// requests, then the fault clears — the breaker must always come
    /// back (a half-open probe always fires once faults stop), the
    /// sample serves exact results again, and `/health` returns to ok.
    #[test]
    fn breaker_always_recovers_once_faults_stop(
        plan in plan_strategy(),
        whole_mix in prop::collection::vec(any::<bool>(), 4..8),
    ) {
        let (bal, fa, chrom) = sweep_fixture();
        let mut config = ServeConfig::new("127.0.0.1:0");
        config.samples.push(sample("s", bal, fa, Some(plan)));
        config.breaker.threshold = 2;
        config.breaker.cooldown = Duration::from_millis(100);
        let server = Arc::new(Server::bind(config).unwrap());

        // Concurrent burst of whole-genome and small requests; statuses
        // are unconstrained (200/206/500/503 are all legitimate under
        // random faults) — the invariants are no hang and no wedge.
        let clients: Vec<_> = whole_mix
            .iter()
            .map(|&whole| {
                let server = Arc::clone(&server);
                let wire = if whole {
                    chrom.clone()
                } else {
                    format!("{chrom}:1-80")
                };
                std::thread::spawn(move || {
                    get(&server, &format!("/call?sample=s&region={wire}&cache=off")).status
                })
            })
            .collect();
        for c in clients {
            let status = c.join().unwrap();
            prop_assert!(
                [200, 206, 500, 503].contains(&status),
                "unexpected status {status}"
            );
        }

        // Faults stop. Within a bounded number of probe cycles the
        // breaker must close and serve the exact clean result.
        server.set_fault("s", None).unwrap();
        let expected = fresh_cli_vcf(bal, fa, None);
        let mut recovered = false;
        for _ in 0..40 {
            std::thread::sleep(Duration::from_millis(150));
            let resp = get(&server, &format!("/call?sample=s&region={chrom}"));
            if resp.status == 200 {
                prop_assert_eq!(resp.text(), expected.clone(), "recovered result must be exact");
                recovered = true;
                break;
            }
        }
        prop_assert!(recovered, "breaker wedged: no recovery within 6 s of the fault clearing");
        let health = get(&server, "/health");
        prop_assert_eq!(health.status, 200, "health must return to ok");
        Arc::try_unwrap(server).ok().unwrap().shutdown();
    }
}
