//! End-to-end smoke tests for the region-call server: result identity
//! with fresh CLI-style runs, session reuse across tiers and cache
//! modes (including invalidation after an on-disk rewrite), deadline
//! and disconnect cancellation without poisoning the session, strict
//! request validation, admission control, and leak-checked shutdown.

use std::fs;
use std::io::Write;
use std::net::TcpStream;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use ultravc_bamlite::{BalFile, SourceTier};
use ultravc_core::driver::{CallDriver, ParallelMode, PrefetchMode};
use ultravc_core::{CallerConfig, RunBudget};
use ultravc_genome::fasta::{read_fasta, write_fasta, FastaRecord};
use ultravc_genome::reference::{GenomeParams, ReferenceGenome};
use ultravc_readsim::dataset::DatasetSpec;
use ultravc_serve::{http_get, SampleSpec, ServeConfig, Server};
use ultravc_vcf::{write_vcf, FilterParams};

/// Per-test scratch directory, wiped on entry.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ultravc-serve-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Simulate an ultra-deep fixture and write its `.bal` + `.fa`.
fn write_fixture(
    dir: &Path,
    seed: u64,
    genome_len: usize,
    depth: f64,
) -> (PathBuf, PathBuf, String) {
    let reference = ReferenceGenome::sars_cov_2_like(GenomeParams::with_length(genome_len), seed);
    let ds = DatasetSpec::new("smoke", depth, seed)
        .with_variants(8, 0.005, 0.05)
        .simulate(&reference);
    let bal = dir.join(format!("s{seed}.bal"));
    ds.alignments.write_to(&bal).unwrap();
    let mut buf = Vec::new();
    write_fasta(
        &mut buf,
        &[FastaRecord {
            name: reference.name.clone(),
            seq: reference.seq.clone(),
        }],
        70,
    )
    .unwrap();
    let fa = dir.join(format!("s{seed}.fa"));
    fs::write(&fa, buf).unwrap();
    (bal, fa, reference.name)
}

/// The driver `ultravc call` runs by default (sequential, improved
/// config, dynamic filter) — the identity baseline for every response.
fn cli_driver() -> CallDriver {
    CallDriver {
        config: CallerConfig::improved(),
        filter: Some(FilterParams::default()),
        mode: ParallelMode::Sequential,
        trace: false,
        prefetch: PrefetchMode::Auto,
        budget: Some(RunBudget::unbounded()),
    }
}

/// What a fresh `ultravc call --region` process would print: reopen the
/// file, run the span, render VCF.
fn fresh_cli_vcf(bal: &Path, fa: &Path, span: Option<Range<u32>>) -> String {
    let records = read_fasta(std::io::BufReader::new(fs::File::open(fa).unwrap())).unwrap();
    let first = records.into_iter().next().unwrap();
    let reference = ReferenceGenome::from_seq(first.name, first.seq);
    let bal = BalFile::open_with(bal, SourceTier::Auto).unwrap();
    let span = span.unwrap_or(0..reference.len() as u32);
    let outcome = cli_driver().run_region(&reference, &bal, span).unwrap();
    write_vcf(&reference.name, "ultravc-0.1", &outcome.records)
}

fn serve_config(addr: &str, bal: &Path, fa: &Path) -> ServeConfig {
    let mut config = ServeConfig::new(addr);
    config.samples.push(SampleSpec {
        name: "s".to_string(),
        bal: bal.to_path_buf(),
        fasta: fa.to_path_buf(),
        fault: None,
    });
    config
}

fn get(server: &Server, path: &str) -> ultravc_serve::Response {
    http_get(server.local_addr(), path, Some(Duration::from_secs(30))).unwrap()
}

/// Live OS threads of this process (the leak check CI gates on).
fn live_threads() -> usize {
    fs::read_dir("/proc/self/task")
        .map(|d| d.count())
        .unwrap_or(0)
}

#[test]
fn responses_are_bitwise_identical_to_fresh_cli_runs() {
    let dir = scratch("identity");
    let (bal, fa, chrom) = write_fixture(&dir, 11, 900, 500.0);
    // Identity, not overload, is under test: lift the cost budget so the
    // concurrent burst below never sheds.
    let mut config = serve_config("127.0.0.1:0", &bal, &fa);
    config.cost_budget = 1 << 40;
    let server = Server::bind(config).unwrap();

    // Whole genome and sub-spans, 1-based inclusive on the wire. The
    // cache is keyed on the resolved span, so the explicit `1-900`
    // spelling of the whole genome hits the bare-name entry.
    for (wire, span, first_is_hit) in [
        (chrom.clone(), None, false),
        (format!("{chrom}:1-900"), Some(0..900u32), true),
        (format!("{chrom}:101-400"), Some(100..400), false),
        (format!("{chrom}:850-900"), Some(849..900), false),
    ] {
        let expected = fresh_cli_vcf(&bal, &fa, span);
        let first = get(&server, &format!("/call?sample=s&region={wire}"));
        assert_eq!(first.status, 200, "{wire}: {}", first.text());
        assert_eq!(
            first.header("x-ultravc-cache"),
            Some(if first_is_hit { "hit" } else { "miss" }),
            "{wire}"
        );
        assert_eq!(first.text(), expected, "{wire}: response != fresh CLI run");
        // Repeat call is served from the cache, still bitwise identical.
        let hit = get(&server, &format!("/call?sample=s&region={wire}"));
        assert_eq!(hit.header("x-ultravc-cache"), Some("hit"));
        assert_eq!(hit.text(), expected);
    }

    // Concurrent clients on distinct regions all get exact results.
    let server = Arc::new(server);
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let server = Arc::clone(&server);
            let chrom = chrom.clone();
            std::thread::spawn(move || {
                let start = 1 + i * 200;
                let wire = format!("{chrom}:{start}-{}", start + 199);
                let resp = get(&server, &format!("/call?sample=s&region={wire}&cache=off"));
                (resp, start)
            })
        })
        .collect();
    for h in handles {
        let (resp, start) = h.join().unwrap();
        let expected = fresh_cli_vcf(&bal, &fa, Some(start - 1..start + 199));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.text(), expected, "concurrent region at {start}");
    }
    let report = Arc::try_unwrap(server).ok().unwrap().shutdown();
    assert_eq!(report.server_errors, 0);
}

#[test]
fn session_reuse_matches_fresh_runs_across_tiers_and_cache_modes() {
    let dir = scratch("reuse");
    let (bal, fa, chrom) = write_fixture(&dir, 13, 700, 400.0);
    let wire = format!("{chrom}:51-650");
    let span = Some(50..650u32);

    for tier in [SourceTier::Mmap, SourceTier::Stream] {
        for cache_on in [true, false] {
            let mut config = serve_config("127.0.0.1:0", &bal, &fa);
            config.source = tier;
            config.cache_capacity = if cache_on { 16 } else { 0 };
            let server = Server::bind(config).unwrap();
            let expected = fresh_cli_vcf(&bal, &fa, span.clone());

            // Two sequential calls on the held-open session ==
            // two fresh CLI runs, bitwise.
            for nth in 0..2 {
                let resp = get(&server, &format!("/call?sample=s&region={wire}"));
                assert_eq!(
                    resp.status, 200,
                    "tier {tier:?} cache {cache_on} call {nth}"
                );
                assert_eq!(
                    resp.text(),
                    expected,
                    "tier {tier:?} cache {cache_on} call {nth}"
                );
                let status = resp.header("x-ultravc-cache");
                if cache_on && nth == 1 {
                    assert_eq!(status, Some("hit"));
                } else {
                    assert_eq!(status, Some("miss"));
                }
            }
            server.shutdown();
        }
    }

    // Invalidation leg: rewrite the file under a running server — the
    // fingerprint changes, the session is rebuilt, stale cache entries
    // are dropped, and the response tracks the new content.
    let server = Server::bind(serve_config("127.0.0.1:0", &bal, &fa)).unwrap();
    let before = get(&server, &format!("/call?sample=s&region={wire}"));
    assert_eq!(before.status, 200);
    // Same reference, different reads (and file length). Rename over
    // the served path so the old mmap'd inode stays valid while the
    // fingerprint at the path changes.
    let reference = ReferenceGenome::sars_cov_2_like(GenomeParams::with_length(700), 13);
    let rewritten = DatasetSpec::new("smoke", 300.0, 99)
        .with_variants(8, 0.005, 0.05)
        .simulate(&reference);
    let new_bal = dir.join("v2.bal");
    rewritten.alignments.write_to(&new_bal).unwrap();
    fs::rename(&new_bal, &bal).unwrap();
    let after = get(&server, &format!("/call?sample=s&region={wire}"));
    assert_eq!(after.status, 200);
    assert_eq!(after.header("x-ultravc-cache"), Some("miss"));
    assert_eq!(
        after.text(),
        fresh_cli_vcf(&bal, &fa, span),
        "post-rewrite response must track the new file content"
    );
    assert_ne!(before.text(), after.text(), "fixture rewrite changed calls");
    let report = server.shutdown();
    assert_eq!(report.session_rebuilds, 1);
    assert!(report.cache.invalidated >= 1, "stale entries dropped");
}

#[test]
fn deadline_and_disconnect_cancel_without_poisoning_the_session() {
    let dir = scratch("cancel");
    // Heavy enough that a whole-genome call cannot finish inside 1 ms.
    let (bal, fa, chrom) = write_fixture(&dir, 17, 3_000, 1_500.0);
    let mut config = serve_config("127.0.0.1:0", &bal, &fa);
    config.workers = 1;
    let server = Server::bind(config).unwrap();

    let happy = format!("/call?sample=s&region={chrom}:1-300");
    let expected = fresh_cli_vcf(&bal, &fa, Some(0..300));
    let baseline = get(&server, &happy);
    assert_eq!(baseline.status, 200);
    assert_eq!(baseline.text(), expected);

    // Deadline-expired request → 206 with the failure itemized; the
    // body stays valid VCF (the completed prefix of the calls).
    let expired = get(
        &server,
        &format!("/call?sample=s&region={chrom}&timeout-ms=1&cache=off"),
    );
    assert_eq!(expired.status, 206, "{}", expired.text());
    assert!(
        expired.header("x-ultravc-interrupt").is_some()
            || expired.header("x-ultravc-partial").is_some()
    );
    assert!(expired.text().starts_with("##fileformat=VCF"));

    // Disconnect mid-call: send the request, then drop the socket.
    {
        let mut s = TcpStream::connect(server.local_addr()).unwrap();
        write!(
            s,
            "GET /call?sample=s&region={chrom}&cache=off HTTP/1.1\r\nHost: t\r\n\r\n"
        )
        .unwrap();
        s.flush().unwrap();
        std::thread::sleep(Duration::from_millis(40));
    } // dropped here — the handler's poll sees EOF and cancels
    std::thread::sleep(Duration::from_millis(200));

    // Neither cancellation poisoned the session or the cache: the
    // happy-path call still returns the exact baseline.
    let again = get(&server, &happy);
    assert_eq!(again.status, 200);
    assert_eq!(again.text(), expected, "session survived cancellations");

    let report = server.shutdown();
    assert!(report.partial >= 1, "deadline call reported partial");
    assert_eq!(report.server_errors, 0);
}

#[test]
fn malformed_requests_are_rejected_with_400s() {
    let dir = scratch("reject");
    let (bal, fa, chrom) = write_fixture(&dir, 19, 400, 200.0);
    let server = Server::bind(serve_config("127.0.0.1:0", &bal, &fa)).unwrap();

    for (path, want) in [
        (format!("/call?sample=s&region={chrom}:0-5"), "1-based"),
        (format!("/call?sample=s&region={chrom}:9-4"), "precedes"),
        (
            format!("/call?sample=s&region={chrom}:1-4000"),
            "out of bounds",
        ),
        (
            format!("/call?sample=s&region={chrom}&min_af=0.1"),
            "unknown parameter",
        ),
        (
            format!("/call?sample=s&region={chrom}&min-af=1.5"),
            "outside",
        ),
        (
            format!("/call?sample=s&region={chrom}&timeout-ms=0"),
            "must be positive",
        ),
        (
            "/call?sample=s&region=other:1-5".to_string(),
            "unknown chromosome",
        ),
        ("/call?sample=s".to_string(), "missing required"),
    ] {
        let resp = get(&server, &path);
        assert_eq!(resp.status, 400, "{path}");
        assert!(resp.text().contains(want), "{path}: {}", resp.text());
    }

    assert_eq!(
        get(&server, &format!("/call?sample=nope&region={chrom}")).status,
        404
    );
    assert_eq!(get(&server, "/nope").status, 404);

    // Non-GET /call → 405.
    {
        let mut s = TcpStream::connect(server.local_addr()).unwrap();
        write!(s, "POST /call HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let resp = ultravc_serve::read_response(&mut std::io::BufReader::new(s)).unwrap();
        assert_eq!(resp.status, 405);
    }

    // min-af is a render-time floor: loosest floor keeps all records,
    // a floor of 1.0 drops every low-frequency call.
    let all = get(&server, &format!("/call?sample=s&region={chrom}&min-af=0"));
    let none = get(&server, &format!("/call?sample=s&region={chrom}&min-af=1"));
    assert_eq!(all.status, 200);
    assert_eq!(none.status, 200);
    assert!(all.text().lines().filter(|l| !l.starts_with('#')).count() > 0);
    assert_eq!(
        none.text().lines().filter(|l| !l.starts_with('#')).count(),
        0
    );

    server.shutdown();
}

#[test]
fn admission_control_bounds_inflight_requests() {
    let dir = scratch("admission");
    let (bal, fa, chrom) = write_fixture(&dir, 23, 3_000, 1_500.0);
    let mut config = serve_config("127.0.0.1:0", &bal, &fa);
    config.workers = 1;
    config.max_inflight = 1;
    config.cache_capacity = 0;
    let server = Arc::new(Server::bind(config).unwrap());

    let handles: Vec<_> = (0..5)
        .map(|_| {
            let server = Arc::clone(&server);
            let chrom = chrom.clone();
            std::thread::spawn(move || {
                get(&server, &format!("/call?sample=s&region={chrom}")).status
            })
        })
        .collect();
    let statuses: Vec<u16> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(
        statuses.iter().all(|s| *s == 200 || *s == 503),
        "{statuses:?}"
    );
    assert!(statuses.contains(&200), "{statuses:?}");
    assert!(
        statuses.contains(&503),
        "admission never rejected: {statuses:?}"
    );
    let report = Arc::try_unwrap(server).ok().unwrap().shutdown();
    assert!(report.rejected >= 1);
}

#[test]
fn keep_alive_reuses_one_connection_and_honors_close() {
    let dir = scratch("keepalive");
    let (bal, fa, chrom) = write_fixture(&dir, 31, 500, 250.0);
    let server = Server::bind(serve_config("127.0.0.1:0", &bal, &fa)).unwrap();

    // Sequential requests over ONE connection: same results as fresh
    // connections, and the server advertises keep-alive.
    let expected = fresh_cli_vcf(&bal, &fa, Some(0..200));
    let mut conn =
        ultravc_serve::ClientConn::new(server.local_addr(), Some(Duration::from_secs(30)));
    for nth in 0..3 {
        let resp = conn
            .get(&format!("/call?sample=s&region={chrom}:1-200"))
            .unwrap();
        assert_eq!(resp.status, 200, "request {nth}");
        assert_eq!(resp.text(), expected, "request {nth}");
        assert_eq!(
            resp.header("connection"),
            Some("keep-alive"),
            "request {nth}"
        );
    }
    let health = conn.get("/health").unwrap();
    assert_eq!(health.status, 200);
    assert!(health.text().starts_with("ok\n"));

    // An explicit `Connection: close` (what http_get sends) is honored.
    let closed = get(&server, "/health");
    assert_eq!(closed.header("connection"), Some("close"));

    // An HTTP/1.0 request defaults to close.
    {
        let mut s = TcpStream::connect(server.local_addr()).unwrap();
        write!(s, "GET /health HTTP/1.0\r\nHost: t\r\n\r\n").unwrap();
        let resp = ultravc_serve::read_response(&mut std::io::BufReader::new(s)).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("connection"), Some("close"));
    }

    let report = server.shutdown();
    // The three keep-alive calls all counted as requests...
    assert_eq!(report.requests, 3);
    assert_eq!(report.server_errors, 0);
}

#[test]
fn graceful_shutdown_leaks_no_threads() {
    let dir = scratch("leak");
    let (bal, fa, chrom) = write_fixture(&dir, 29, 500, 250.0);
    let baseline = live_threads();

    let server = Server::bind(serve_config("127.0.0.1:0", &bal, &fa)).unwrap();
    let resp = get(&server, &format!("/call?sample=s&region={chrom}:1-200"));
    assert_eq!(resp.status, 200);
    // Shutdown over the wire (what CI's smoke script does), then join.
    assert_eq!(get(&server, "/shutdown").status, 200);
    let report = server.join();
    assert_eq!(report.requests, 1);

    // Worker, acceptor and handler threads must all be gone; give the
    // OS a moment to reap them.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        if live_threads() <= baseline {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "leaked threads: {} live vs {baseline} baseline",
            live_threads()
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}
