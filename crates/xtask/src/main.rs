//! `xlint` — the workspace knob auditor.
//!
//! Every tunable this repo exposes is a contract with three parties: the
//! code that reads it, the README that documents it, and the CI matrix
//! that exercises it. This binary cross-checks those parties and fails
//! (exit 1) on any drift:
//!
//! * an `ULTRAVC_*` environment variable referenced in code but absent
//!   from the README knob tables (undocumented knob);
//! * an `ULTRAVC_*` variable in the README but no longer read anywhere
//!   (stale documentation);
//! * an `ULTRAVC_*` variable set by a CI workflow but no longer read
//!   anywhere (stale CI matrix dimension);
//! * a `--flag` key the CLI parses but the README never mentions
//!   (undocumented flag).
//!
//! No dependencies, no config: the scan is purely lexical, so it works
//! on the offline CI runners and stays O(repo size). Run it from
//! anywhere in the workspace: `cargo run -p ultravc-xtask --bin xlint`.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Env vars that are deliberately *not* documented: negative-test
/// fixtures that code references only to prove it rejects them.
const ENV_ALLOWLIST: &[&str] = &["ULTRAVC_NOPE_XYZ"];

fn main() -> ExitCode {
    let root = repo_root();
    let mut errors = Vec::new();

    // ---- ULTRAVC_* environment variables --------------------------------
    let code_vars = env_vars_in_tree(&root, &["crates", "src", "tests"]);
    let readme = fs::read_to_string(root.join("README.md")).unwrap_or_default();
    let readme_vars: BTreeSet<String> = env_vars_in_text(&readme).into_iter().collect();
    let ci_vars = env_vars_in_tree(&root, &[".github"]);

    for (var, files) in &code_vars {
        if ENV_ALLOWLIST.contains(&var.as_str()) {
            continue;
        }
        if !readme_vars.contains(var) {
            errors.push(format!(
                "env var `{var}` is read in code ({}) but missing from the README knob tables",
                files.iter().next().expect("non-empty provenance")
            ));
        }
    }
    for var in &readme_vars {
        if !code_vars.contains_key(var) {
            errors.push(format!(
                "env var `{var}` is documented in README.md but no code reads it (stale doc)"
            ));
        }
    }
    for (var, files) in &ci_vars {
        if !code_vars.contains_key(var) {
            errors.push(format!(
                "env var `{var}` is set by CI ({}) but no code reads it (stale matrix knob)",
                files.iter().next().expect("non-empty provenance")
            ));
        }
    }

    // ---- CLI --flag knobs ----------------------------------------------
    let code_flags = cli_flags_in_tree(&root.join("crates/cli/src"));
    let readme_flags = flags_in_text(&readme);
    for (flag, file) in &code_flags {
        if !readme_flags.contains(flag) {
            errors.push(format!(
                "CLI flag `--{flag}` is parsed in {file} but never mentioned in README.md"
            ));
        }
    }

    if errors.is_empty() {
        println!(
            "xlint ok: {} env vars ({} documented, {} in CI), {} CLI flags — no drift",
            code_vars.len(),
            readme_vars.len(),
            ci_vars.len(),
            code_flags.len()
        );
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("xlint: {e}");
        }
        eprintln!("xlint: {} violation(s)", errors.len());
        ExitCode::FAILURE
    }
}

/// The workspace root: two levels up from this crate's manifest.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask has a workspace root two levels up")
        .to_path_buf()
}

/// Every `ULTRAVC_*` token in `.rs`/`.yml`/`.yaml` files under the given
/// top-level directories, mapped to the files referencing it.
fn env_vars_in_tree(root: &Path, dirs: &[&str]) -> BTreeMap<String, BTreeSet<String>> {
    let mut out: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for dir in dirs {
        for file in files_under(&root.join(dir), &["rs", "yml", "yaml"]) {
            let Ok(text) = fs::read_to_string(&file) else {
                continue;
            };
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .display()
                .to_string();
            for var in env_vars_in_text(&text) {
                out.entry(var).or_default().insert(rel.clone());
            }
        }
    }
    out
}

/// Lexical scan for `ULTRAVC_` followed by at least one `[A-Z0-9_]`.
fn env_vars_in_text(text: &str) -> Vec<String> {
    const PREFIX: &str = "ULTRAVC_";
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(i) = rest.find(PREFIX) {
        let tail = &rest[i + PREFIX.len()..];
        let name_len = tail
            .bytes()
            .take_while(|b| b.is_ascii_uppercase() || b.is_ascii_digit() || *b == b'_')
            .count();
        if name_len > 0 {
            out.push(format!("{PREFIX}{}", &tail[..name_len]));
        }
        rest = &rest[i + PREFIX.len()..];
    }
    out
}

/// Flag keys the CLI actually parses: string literals behind the flag-map
/// lookups (`.get("k")` / `.contains_key("k")`), the first literal of
/// each `get_parsed(...)` call, and the boolean-flag `matches!(key, ...)`
/// alternatives. Purely lexical, tied to the CLI's parsing idioms — a new
/// lookup style should be added here when introduced.
fn cli_flags_in_tree(cli_src: &Path) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for file in files_under(cli_src, &["rs"]) {
        let Ok(text) = fs::read_to_string(&file) else {
            continue;
        };
        let name = file.display().to_string();
        for line in text.lines() {
            for marker in [".get(\"", ".contains_key(\""] {
                for key in literals_after_marker(line, marker) {
                    out.entry(key).or_insert_with(|| name.clone());
                }
            }
            if line.contains("get_parsed") {
                if let Some(key) = first_literal(line) {
                    out.entry(key).or_insert_with(|| name.clone());
                }
            }
            if line.contains("matches!(key") {
                for key in all_literals(line) {
                    out.entry(key).or_insert_with(|| name.clone());
                }
            }
        }
    }
    // Keep only plausible flag keys (lowercase kebab), dropping literals
    // like format strings that slip through the lexical net.
    out.retain(|k, _| {
        !k.is_empty()
            && k.bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-')
            && k.bytes().next().is_some_and(|b| b.is_ascii_lowercase())
    });
    out
}

/// Every string directly following `marker` up to the closing quote.
fn literals_after_marker(line: &str, marker: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(i) = rest.find(marker) {
        let tail = &rest[i + marker.len()..];
        if let Some(end) = tail.find('"') {
            out.push(tail[..end].to_string());
        }
        rest = &rest[i + marker.len()..];
    }
    out
}

/// The first `"…"` literal on the line, if any.
fn first_literal(line: &str) -> Option<String> {
    let start = line.find('"')? + 1;
    let end = line[start..].find('"')?;
    Some(line[start..start + end].to_string())
}

/// Every `"…"` literal on the line.
fn all_literals(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(start) = rest.find('"') {
        let tail = &rest[start + 1..];
        let Some(end) = tail.find('"') else { break };
        out.push(tail[..end].to_string());
        rest = &tail[end + 1..];
    }
    out
}

/// Every `--flag` mention in the text (README), without the dashes.
fn flags_in_text(text: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut rest = text;
    while let Some(i) = rest.find("--") {
        let tail = &rest[i + 2..];
        let len = tail
            .bytes()
            .take_while(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || *b == b'-')
            .count();
        if len > 0 && tail.as_bytes()[0].is_ascii_lowercase() {
            out.insert(tail[..len].to_string());
        }
        rest = &rest[i + 2..];
    }
    out
}

/// Recursively list files with one of the given extensions, skipping
/// build output.
fn files_under(dir: &Path, exts: &[&str]) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            out.extend(files_under(&path, exts));
        } else if path
            .extension()
            .is_some_and(|e| exts.iter().any(|x| e == *x))
        {
            out.push(path);
        }
    }
    out
}
