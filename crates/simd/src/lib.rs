//! # ultravc-simd
//!
//! Portable `f64` vector kernels with **runtime dispatch** for the hot
//! loops of the binned Poisson-binomial pipeline.
//!
//! PR 1 collapsed the exact tail DP to a per-bin truncated-binomial
//! convolution — `f'[t] = Σ bᵢ·f[t−i]` — which is a dense dot product over
//! `min(m, K)` lanes and now dominates every tested column. This crate
//! vectorizes that convolution (and the pileup-side histogram reductions
//! feeding it) without leaving stable Rust:
//!
//! * [`F64Lanes`] — a `#[repr(align(32))]` fixed-width lane array with
//!   element-wise arithmetic. It is *not* an intrinsics wrapper: the same
//!   generic lane code is monomorphized once per backend, and the
//!   backend's `#[target_feature]` attribute tells LLVM which vector ISA
//!   to emit for it.
//! * [`Kernels`] — a table of function pointers (convolution, compensated
//!   convolution, binomial-pmf setup, `u32` histogram reductions). One
//!   table per backend.
//! * [`kernels`] — the dispatcher: detects the best available backend
//!   **once** per process (cached in a `OnceLock`) and returns its table.
//!
//! # Dispatch model
//!
//! ```text
//!            ┌ ULTRAVC_FORCE_SCALAR=1 ──────────────► SCALAR
//! kernels() ─┤
//!            └ else ─ is_x86_feature_detected!(avx2+fma)? ─► AVX2
//!                     target_arch = aarch64?             ──► NEON
//!                     otherwise                          ──► SCALAR
//! ```
//!
//! The choice is made on first call and cached for the process lifetime,
//! so the per-column hot path pays one atomic load, not a `cpuid`.
//! Setting `ULTRAVC_FORCE_SCALAR=1` (or `true`/`yes`/`on`) pins the
//! scalar reference backend — tests and CI use this to prove the fallback
//! never rots.
//!
//! # Numerical contract
//!
//! Every backend computes **bitwise-identical** results. This is by
//! construction, not by tolerance:
//!
//! * element-wise IEEE-754 operations (`+`, `−`, `×`, `÷`) are correctly
//!   rounded whether executed scalar or in vector lanes, so code that
//!   performs the same operations in the same per-element order is
//!   deterministic across backends;
//! * the vector convolutions restructure the scalar loops from per-output
//!   dot products into per-coefficient `axpy` sweeps — a reordering of
//!   *independent output elements* that leaves each output's own
//!   accumulation order unchanged;
//! * the compensated variants extract the *exact* rounding error of every
//!   addition (branchless Knuth two-sum in the vector backends, branchy
//!   Neumaier in the scalar reference — both yield the identical,
//!   representable error value), so the Kahan-compensated path keeps its
//!   error bound on every backend.
//!
//! The payoff: dispatch can never change a variant call, an early-exit
//! decision, or a certified bail bound — only the wall clock.
//!
//! # Adding a backend
//!
//! 1. Add a `#[cfg]`-gated module in `dispatch.rs` with one wrapper per
//!    [`Kernels`] entry. Each wrapper calls the shared generic
//!    implementation from `kernels.rs` inside a
//!    `#[target_feature(enable = ...)]` function, so the backend is the
//!    *same algorithm* compiled for a wider ISA (see the `avx2` module for
//!    the pattern — this is what keeps backends bitwise-aligned).
//! 2. Give it a `static` table with a unique `name`.
//! 3. Teach `detect()` to return it when the features are present, and
//!    `available()` to list it so the agreement tests cover it.
//!
//! Backends needing genuinely different algorithms (e.g. a GPU offload)
//! must still preserve the numerical contract above or grow their own
//! acceptance tests.
//!
//! The `arch` cargo feature (default-on) gates the `unsafe`
//! `#[target_feature]` backends; `--no-default-features` builds a
//! scalar-only crate, which CI compiles and tests separately.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
// Unsafe is denied crate-wide and re-allowed only at the two audited
// sites (see README § Unsafety): the aligned-buffer slice views and the
// `#[target_feature]` dispatch wrappers.
#![deny(unsafe_code)]

mod aligned;
mod dispatch;
mod kernels;
mod lanes;

pub use aligned::AlignedF64;
pub use dispatch::{available, kernels, scalar, Kernels, SMALL_K_THRESHOLD};
pub use lanes::F64Lanes;
