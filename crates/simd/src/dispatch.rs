//! Runtime backend selection: one `cpuid` probe per process, cached in a
//! [`OnceLock`]; every later call is an atomic load.
//!
//! See the crate docs for the dispatch diagram and the recipe for adding
//! a backend.

use crate::kernels as imp;
use std::sync::OnceLock;

/// Signature of the compensated convolution entry: `(b, f, g, comp)`.
pub type ConvFoldCompensatedFn = fn(&[f64], &[f64], &mut [f64], &mut [f64]);

/// A backend's kernel table. Entries are plain function pointers so the
/// per-call overhead is one indirect call — negligible against loop
/// bodies that process whole columns or DP vectors.
#[derive(Debug, Clone, Copy)]
pub struct Kernels {
    /// Backend name, surfaced in run stats and bench output
    /// (`"scalar"`, `"avx2"`, `"neon"`).
    pub name: &'static str,
    /// Truncated-binomial convolution `g[t] = Σ_{i≤min(t,cut)} b[i]·f[t−i]`
    /// with plain accumulation. Requires `f.len() ≥ g.len()`.
    pub conv_fold: fn(b: &[f64], f: &[f64], g: &mut [f64]),
    /// The convolution with compensated (Neumaier-bound) accumulation;
    /// arguments `(b, f, g, comp)` where `comp` is scratch of at least
    /// `g.len()` elements.
    pub conv_fold_compensated: ConvFoldCompensatedFn,
    /// Binomial pmf prefix `b[i] = C(m,i)pⁱq^{m−i}` from `b0 = q^m` and
    /// `ratio = p/q` (two-pass ratio recurrence).
    pub binomial_pmf: fn(b: &mut [f64], m: u64, ratio: f64, b0: f64),
    /// Widening sum of a `u32` histogram slice.
    pub sum_u32: fn(counts: &[u32]) -> u64,
    /// Element-wise `dst[i] += src[i]` (histogram group aggregation; the
    /// caller guarantees no overflow).
    pub accumulate_u32: fn(dst: &mut [u32], src: &[u32]),
    /// `Σ counts[i]·table[i]` — the λ reduction over the Phred table.
    pub dot_u32_f64: fn(counts: &[u32], table: &[f64]) -> f64,
}

/// The scalar reference backend: the binned DP's loops exactly as they
/// shipped pre-SIMD. Always available; pinned by `ULTRAVC_FORCE_SCALAR`.
static SCALAR: Kernels = Kernels {
    name: "scalar",
    conv_fold: imp::conv_fold_scalar,
    conv_fold_compensated: imp::conv_fold_compensated_scalar,
    binomial_pmf: binomial_pmf_baseline,
    sum_u32: sum_u32_baseline,
    accumulate_u32: accumulate_u32_baseline,
    dot_u32_f64: dot_u32_f64_baseline,
};

// Baseline-ISA monomorphizations of the shared generic kernels (the
// `fn`-pointer table needs concrete, non-`inline(always)` symbols).
fn binomial_pmf_baseline(b: &mut [f64], m: u64, ratio: f64, b0: f64) {
    imp::binomial_pmf_two_pass(b, m, ratio, b0);
}
fn sum_u32_baseline(counts: &[u32]) -> u64 {
    imp::sum_u32_impl(counts)
}
fn accumulate_u32_baseline(dst: &mut [u32], src: &[u32]) {
    imp::accumulate_u32_impl(dst, src);
}
fn dot_u32_f64_baseline(counts: &[u32], table: &[f64]) -> f64 {
    imp::dot_u32_f64_impl(counts, table)
}

/// AVX2+FMA backend: the generic lane kernels monomorphized inside
/// `#[target_feature(enable = "avx2,fma")]` functions, so LLVM lowers
/// [`crate::F64Lanes<4>`] blocks to 256-bit `ymm` operations.
#[cfg(all(feature = "arch", target_arch = "x86_64"))]
#[allow(unsafe_code)] // `#[target_feature]` wrappers; safety contract above
mod avx2 {
    use crate::kernels as imp;

    // SAFETY CONTRACT (applies to every wrapper below): the `AVX2` table
    // is only ever handed out by `detect()`/`available()` after
    // `is_x86_feature_detected!` confirmed avx2+fma on this CPU, so the
    // `unsafe` target-feature call inside each wrapper is reached only
    // when the features exist. The debug assertion re-checks this.
    macro_rules! avx2_wrapper {
        ($wrapper:ident, $inner:ident, $impl:path,
         fn($($arg:ident: $ty:ty),*) $(-> $ret:ty)?) => {
            #[target_feature(enable = "avx2", enable = "fma")]
            unsafe fn $inner($($arg: $ty),*) $(-> $ret)? {
                $impl($($arg),*)
            }
            pub(super) fn $wrapper($($arg: $ty),*) $(-> $ret)? {
                debug_assert!(
                    std::arch::is_x86_feature_detected!("avx2"),
                    "avx2 kernel table used on a CPU without avx2"
                );
                // SAFETY: see the module-level contract above.
                unsafe { $inner($($arg),*) }
            }
        };
    }

    avx2_wrapper!(
        conv_fold,
        conv_fold_tf,
        imp::conv_fold_lanes,
        fn(b: &[f64], f: &[f64], g: &mut [f64])
    );
    avx2_wrapper!(
        conv_fold_compensated,
        conv_fold_compensated_tf,
        imp::conv_fold_compensated_lanes,
        fn(b: &[f64], f: &[f64], g: &mut [f64], comp: &mut [f64])
    );
    avx2_wrapper!(
        binomial_pmf,
        binomial_pmf_tf,
        imp::binomial_pmf_two_pass,
        fn(b: &mut [f64], m: u64, ratio: f64, b0: f64)
    );
    avx2_wrapper!(
        sum_u32,
        sum_u32_tf,
        imp::sum_u32_impl,
        fn(counts: &[u32]) -> u64
    );
    avx2_wrapper!(
        accumulate_u32,
        accumulate_u32_tf,
        imp::accumulate_u32_impl,
        fn(dst: &mut [u32], src: &[u32])
    );
    avx2_wrapper!(
        dot_u32_f64,
        dot_u32_f64_tf,
        imp::dot_u32_f64_impl,
        fn(counts: &[u32], table: &[f64]) -> f64
    );

    pub(super) static AVX2: super::Kernels = super::Kernels {
        name: "avx2",
        conv_fold,
        conv_fold_compensated,
        binomial_pmf,
        sum_u32,
        accumulate_u32,
        dot_u32_f64,
    };
}

/// NEON backend: aarch64 guarantees NEON in its baseline ISA, so the lane
/// kernels need no `target_feature` gate — the compiler already emits
/// NEON for them. The separate table exists so the axpy-restructured
/// loops (rather than the branchy scalar reference) run by default, and
/// so stats report the vector path honestly.
#[cfg(all(feature = "arch", target_arch = "aarch64"))]
mod neon {
    use crate::kernels as imp;

    fn conv_fold(b: &[f64], f: &[f64], g: &mut [f64]) {
        imp::conv_fold_lanes(b, f, g);
    }
    fn conv_fold_compensated(b: &[f64], f: &[f64], g: &mut [f64], comp: &mut [f64]) {
        imp::conv_fold_compensated_lanes(b, f, g, comp);
    }

    pub(super) static NEON: super::Kernels = super::Kernels {
        name: "neon",
        conv_fold,
        conv_fold_compensated,
        binomial_pmf: super::binomial_pmf_baseline,
        sum_u32: super::sum_u32_baseline,
        accumulate_u32: super::accumulate_u32_baseline,
        dot_u32_f64: super::dot_u32_f64_baseline,
    };
}

/// The scalar reference backend (always present). Benchmarks and the
/// agreement tests use this as the comparison baseline regardless of
/// what [`kernels`] dispatched.
pub fn scalar() -> &'static Kernels {
    &SCALAR
}

/// Problem-size threshold for [`Kernels::for_k`]: convolutions whose
/// truncation cut `K` is below this run the scalar kernels. A K-truncated
/// `conv_fold` touches at most `K+1` lanes of `b` per output element, so
/// for tiny K the vector kernels spend their time in remainder handling
/// and the wider loads buy nothing — the scalar loop is at parity or
/// ahead, and keeps the icache footprint smaller.
pub const SMALL_K_THRESHOLD: usize = 16;

impl Kernels {
    /// Route a K-truncated convolution: tables stay as dispatched for
    /// `k >= SMALL_K_THRESHOLD`, tiny problems fall back to the scalar
    /// reference. Bitwise-neutral by construction — both tables compute
    /// the identical truncated sum — so callers may apply it per-column
    /// without perturbing results.
    pub fn for_k(&self, k: usize) -> &Kernels {
        if k < SMALL_K_THRESHOLD {
            scalar()
        } else {
            self
        }
    }
}

/// Every backend usable on this host, scalar first. The proptest suite
/// runs the whole list pairwise so an undetectable backend is skipped
/// (not silently assumed) on machines that lack it.
pub fn available() -> Vec<&'static Kernels> {
    #[allow(unused_mut)]
    let mut list = vec![&SCALAR];
    #[cfg(all(feature = "arch", target_arch = "x86_64"))]
    if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma") {
        list.push(&avx2::AVX2);
    }
    #[cfg(all(feature = "arch", target_arch = "aarch64"))]
    list.push(&neon::NEON);
    list
}

/// True when the environment pins the scalar backend.
fn force_scalar_env() -> bool {
    parse_force_scalar(std::env::var("ULTRAVC_FORCE_SCALAR").ok().as_deref())
}

/// `ULTRAVC_FORCE_SCALAR` accepts the usual truthy spellings; anything
/// else (including unset and `0`) means "dispatch normally".
fn parse_force_scalar(value: Option<&str>) -> bool {
    matches!(
        value.map(str::trim),
        Some("1") | Some("true") | Some("TRUE") | Some("yes") | Some("on")
    )
}

/// Backend selection given the override flag — the pure core of
/// [`kernels`], separated so tests can exercise both branches without
/// mutating the process environment.
fn select(force_scalar: bool) -> &'static Kernels {
    if force_scalar {
        return &SCALAR;
    }
    available().last().expect("scalar backend always present")
}

static ACTIVE: OnceLock<&'static Kernels> = OnceLock::new();

/// The process-wide active kernel table.
///
/// First call probes the CPU (honoring `ULTRAVC_FORCE_SCALAR`) and caches
/// the winner; subsequent calls are an atomic load. The choice is
/// intentionally immutable for the process lifetime — a run must not mix
/// backends between columns (they agree bitwise, but perf accounting and
/// the reported kernel name should be single-valued).
pub fn kernels() -> &'static Kernels {
    ACTIVE.get_or_init(|| select(force_scalar_env()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_always_listed_first() {
        let list = available();
        assert_eq!(list[0].name, "scalar");
        assert!(!list.is_empty());
    }

    #[test]
    fn force_scalar_parsing() {
        for truthy in ["1", "true", "TRUE", "yes", "on", " 1 "] {
            assert!(parse_force_scalar(Some(truthy)), "{truthy:?}");
        }
        for falsy in [
            None,
            Some("0"),
            Some(""),
            Some("false"),
            Some("2"),
            Some("off"),
        ] {
            assert!(!parse_force_scalar(falsy), "{falsy:?}");
        }
    }

    #[test]
    fn select_honors_override() {
        assert_eq!(select(true).name, "scalar");
        let free = select(false);
        assert!(available().iter().any(|k| k.name == free.name));
    }

    #[test]
    fn dispatch_is_cached_and_consistent() {
        let a = kernels();
        let b = kernels();
        assert!(std::ptr::eq(a, b), "OnceLock must cache the table");
        assert!(!a.name.is_empty());
    }

    #[test]
    fn for_k_routes_small_problems_to_scalar() {
        for k in available() {
            // Below the threshold: always the scalar table.
            for small in [0, 1, SMALL_K_THRESHOLD - 1] {
                assert!(
                    std::ptr::eq(k.for_k(small), scalar()),
                    "{} k={small}",
                    k.name
                );
            }
            // At and above: the dispatched table, untouched.
            for big in [SMALL_K_THRESHOLD, SMALL_K_THRESHOLD + 1, 1 << 20] {
                assert!(std::ptr::eq(k.for_k(big), k), "{} k={big}", k.name);
            }
        }
        // The scalar table routes to itself everywhere.
        assert!(std::ptr::eq(scalar().for_k(3), scalar()));
        assert!(std::ptr::eq(scalar().for_k(300), scalar()));
    }

    #[cfg(all(feature = "arch", target_arch = "x86_64"))]
    #[test]
    fn avx2_listed_iff_detected() {
        let has = std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("fma");
        let listed = available().iter().any(|k| k.name == "avx2");
        assert_eq!(has, listed);
    }
}
