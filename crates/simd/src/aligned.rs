//! A growable `f64` buffer whose storage is 32-byte aligned, so 4-lane
//! blocks load from offset 0 without a scalar peel loop and never split a
//! cache line.
//!
//! `BinnedTailScratch` holds its DP state in these: the buffers grow to a
//! worker's high-water `K` and are then reused allocation-free, exactly
//! like the `Vec<f64>`s they replace — `Deref<Target = [f64]>` keeps the
//! call sites unchanged.

use std::ops::{Deref, DerefMut};

/// One 32-byte-aligned block of backing storage.
#[derive(Clone, Copy, Debug, Default)]
#[repr(C, align(32))]
struct Block([f64; 4]);

/// A growable, 32-byte-aligned `f64` buffer. API mirrors the `Vec<f64>`
/// subset the DP scratch uses (`resize`/`clear`/`fill` + slice access).
#[derive(Clone, Debug, Default)]
pub struct AlignedF64 {
    /// Backing blocks; always fully initialized, `blocks.len() * 4 ≥ len`.
    blocks: Vec<Block>,
    /// Logical element count.
    len: usize,
}

impl AlignedF64 {
    /// Empty buffer (no allocation until first `resize`).
    pub fn new() -> AlignedF64 {
        AlignedF64::default()
    }

    /// Logical length in elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is logically empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drop all elements, keeping the allocation.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Resize to `new_len` elements; new elements are `value`.
    pub fn resize(&mut self, new_len: usize, value: f64) {
        let blocks = new_len.div_ceil(4);
        if new_len > self.len {
            self.blocks.resize(blocks, Block([value; 4]));
            let start = self.len;
            self.len = new_len;
            // Fresh blocks arrive pre-filled; this also overwrites the
            // stale tail of the previously-last block.
            self.as_mut_slice()[start..].fill(value);
        } else {
            self.blocks.truncate(blocks);
            self.len = new_len;
        }
    }

    /// Set every element to `value`.
    pub fn fill(&mut self, value: f64) {
        self.as_mut_slice().fill(value);
    }

    /// The elements as a slice. The pointer is 32-byte aligned.
    #[inline]
    #[allow(unsafe_code)] // audited slice view; see README § Unsafety
    pub fn as_slice(&self) -> &[f64] {
        // SAFETY: `blocks` is a fully-initialized contiguous run of
        // `Block` (`#[repr(C)]`, size 32 = 4 × f64, no padding), and the
        // struct invariant guarantees `len ≤ blocks.len() * 4`.
        unsafe { std::slice::from_raw_parts(self.blocks.as_ptr().cast::<f64>(), self.len) }
    }

    /// The elements as a mutable slice. The pointer is 32-byte aligned.
    #[inline]
    #[allow(unsafe_code)] // audited slice view; see README § Unsafety
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        // SAFETY: as in `as_slice`, plus `&mut self` guarantees
        // exclusivity.
        unsafe { std::slice::from_raw_parts_mut(self.blocks.as_mut_ptr().cast::<f64>(), self.len) }
    }
}

impl Deref for AlignedF64 {
    type Target = [f64];
    #[inline]
    fn deref(&self) -> &[f64] {
        self.as_slice()
    }
}

impl DerefMut for AlignedF64 {
    #[inline]
    fn deref_mut(&mut self) -> &mut [f64] {
        self.as_mut_slice()
    }
}

impl PartialEq for AlignedF64 {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl From<&[f64]> for AlignedF64 {
    fn from(src: &[f64]) -> AlignedF64 {
        let mut out = AlignedF64::new();
        out.resize(src.len(), 0.0);
        out.as_mut_slice().copy_from_slice(src);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resize_grow_shrink_regrow() {
        let mut b = AlignedF64::new();
        assert!(b.is_empty());
        b.resize(5, 1.5);
        assert_eq!(b.as_slice(), &[1.5; 5]);
        // Shrink keeps the prefix…
        b.resize(3, 9.9);
        assert_eq!(b.as_slice(), &[1.5; 3]);
        // …and regrow must not resurrect stale tail values.
        b.resize(7, 0.0);
        assert_eq!(b.as_slice(), &[1.5, 1.5, 1.5, 0.0, 0.0, 0.0, 0.0]);
        assert_eq!(b.len(), 7);
    }

    #[test]
    fn pointer_is_32_byte_aligned() {
        for n in [1usize, 3, 4, 5, 31, 64] {
            let mut b = AlignedF64::new();
            b.resize(n, 0.0);
            assert_eq!(b.as_slice().as_ptr() as usize % 32, 0, "n={n}");
            assert_eq!(b.as_mut_slice().as_ptr() as usize % 32, 0, "n={n}");
        }
    }

    #[test]
    fn deref_indexing_and_iteration() {
        let mut b = AlignedF64::new();
        b.resize(4, 0.0);
        b[0] = 1.0;
        b[3] = 4.0;
        assert_eq!(b[0], 1.0);
        assert_eq!(b.iter().sum::<f64>(), 5.0);
        b.fill(2.0);
        assert_eq!(b.as_slice(), &[2.0; 4]);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.as_slice(), &[] as &[f64]);
    }

    #[test]
    fn clone_and_eq() {
        let a = AlignedF64::from(&[1.0, 2.0, 3.0][..]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.as_slice(), &[1.0, 2.0, 3.0]);
    }
}
