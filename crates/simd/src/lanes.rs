//! The portable lane abstraction: a fixed-width `f64` array with
//! element-wise arithmetic, aligned to a 256-bit vector register.
//!
//! There are no intrinsics here. The backend modules monomorphize the
//! generic kernels (which are written in terms of `F64Lanes`) inside
//! `#[target_feature]` functions; LLVM then lowers these arrays to the
//! backend's native registers (`ymm` under AVX2, `v` pairs under NEON).
//! On the scalar backend the same code compiles to the baseline ISA.

use std::ops::{Add, Mul, Sub};

/// `N` f64 lanes, aligned so a full vector register can load them without
/// crossing a cache line. The workspace uses `F64Lanes<4>` (one AVX2
/// `ymm`); other widths are free to instantiate.
#[derive(Clone, Copy, Debug, PartialEq)]
#[repr(C, align(32))]
pub struct F64Lanes<const N: usize>(pub [f64; N]);

impl<const N: usize> F64Lanes<N> {
    /// All lanes set to `v`.
    #[inline(always)]
    pub const fn splat(v: f64) -> Self {
        F64Lanes([v; N])
    }

    /// Load the first `N` elements of `s` (panics if `s` is shorter).
    #[inline(always)]
    pub fn load(s: &[f64]) -> Self {
        let mut lanes = [0.0f64; N];
        lanes.copy_from_slice(&s[..N]);
        F64Lanes(lanes)
    }

    /// Store the lanes into the first `N` elements of `s`.
    #[inline(always)]
    pub fn store(self, s: &mut [f64]) {
        s[..N].copy_from_slice(&self.0);
    }

    /// Horizontal sum with a fixed stride-halving tree (deterministic
    /// across backends; for `N = 4`: `(l0 + l2) + (l1 + l3)`).
    #[inline(always)]
    pub fn reduce_sum(self) -> f64 {
        let mut width = N;
        let mut lanes = self.0;
        while width > 1 {
            width /= 2;
            for l in 0..width {
                lanes[l] += lanes[l + width];
            }
        }
        lanes[0]
    }
}

impl<const N: usize> Add for F64Lanes<N> {
    type Output = Self;
    #[inline(always)]
    fn add(mut self, rhs: Self) -> Self {
        for l in 0..N {
            self.0[l] += rhs.0[l];
        }
        self
    }
}

impl<const N: usize> Sub for F64Lanes<N> {
    type Output = Self;
    #[inline(always)]
    fn sub(mut self, rhs: Self) -> Self {
        for l in 0..N {
            self.0[l] -= rhs.0[l];
        }
        self
    }
}

impl<const N: usize> Mul for F64Lanes<N> {
    type Output = Self;
    #[inline(always)]
    fn mul(mut self, rhs: Self) -> Self {
        for l in 0..N {
            self.0[l] *= rhs.0[l];
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_load_store_roundtrip() {
        let v = F64Lanes::<4>::splat(2.5);
        assert_eq!(v.0, [2.5; 4]);
        let src = [1.0, 2.0, 3.0, 4.0, 5.0];
        let loaded = F64Lanes::<4>::load(&src);
        let mut out = [0.0; 6];
        loaded.store(&mut out);
        assert_eq!(&out[..4], &src[..4]);
        assert_eq!(out[4], 0.0);
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = F64Lanes::<4>([1.0, 2.0, 3.0, 4.0]);
        let b = F64Lanes::<4>([10.0, 20.0, 30.0, 40.0]);
        assert_eq!((a + b).0, [11.0, 22.0, 33.0, 44.0]);
        assert_eq!((b - a).0, [9.0, 18.0, 27.0, 36.0]);
        assert_eq!((a * b).0, [10.0, 40.0, 90.0, 160.0]);
    }

    #[test]
    fn reduce_sum_is_pairwise() {
        let v = F64Lanes::<4>([1e100, 1.0, -1e100, 2.0]);
        // Stride tree: (1e100 + -1e100) + (1.0 + 2.0) = 3 — a naive
        // left-to-right fold would lose the 1.0 and return 2.
        assert_eq!(v.reduce_sum(), 3.0);
        assert_eq!(F64Lanes::<2>([3.0, 4.0]).reduce_sum(), 7.0);
        assert_eq!(F64Lanes::<1>([9.0]).reduce_sum(), 9.0);
    }

    #[test]
    fn alignment_is_32_bytes() {
        assert_eq!(std::mem::align_of::<F64Lanes<4>>(), 32);
        assert_eq!(std::mem::size_of::<F64Lanes<4>>(), 32);
    }
}
