//! Kernel implementations shared by every backend.
//!
//! Two families live here:
//!
//! * **Scalar reference kernels** (`*_scalar`) — the loops exactly as the
//!   binned DP shipped them before this crate existed: per-output dot
//!   products with branchy Neumaier compensation. They are the semantic
//!   ground truth and the `ULTRAVC_FORCE_SCALAR` fallback.
//! * **Lane kernels** (`*_lanes`) — the same arithmetic restructured into
//!   per-coefficient `axpy` sweeps over [`F64Lanes<4>`] blocks, written
//!   `#[inline(always)]` so each backend monomorphizes them inside its
//!   `#[target_feature]` wrapper and LLVM emits that backend's vector ISA.
//!
//! Both families produce **bitwise-identical** outputs (see the crate
//! docs for why); the unit tests at the bottom pin that.

use crate::lanes::F64Lanes;

/// Lane width used by the blocked kernels: 4 × f64 = one AVX2 `ymm`.
pub(crate) const LANES: usize = 4;

// ---------------------------------------------------------------------
// Truncated-binomial convolution: g[t] = Σ_{i ≤ min(t, cut)} b[i]·f[t−i]
// ---------------------------------------------------------------------

/// Scalar reference convolution: per-output dot product, plain
/// accumulation.
pub(crate) fn conv_fold_scalar(b: &[f64], f: &[f64], g: &mut [f64]) {
    debug_assert!(f.len() >= g.len());
    if b.is_empty() {
        g.fill(0.0);
        return;
    }
    for (t, slot) in g.iter_mut().enumerate() {
        let imax = t.min(b.len() - 1);
        let mut acc = 0.0f64;
        for i in 0..=imax {
            acc += b[i] * f[t - i];
        }
        *slot = acc;
    }
}

/// Scalar reference convolution with Neumaier-compensated per-output
/// accumulation — bit-for-bit the loop `fold_chunk` shipped with PR 1.
/// `comp` is dead scratch here (the compensator lives in a register); it
/// is part of the signature so the backends are interchangeable.
pub(crate) fn conv_fold_compensated_scalar(b: &[f64], f: &[f64], g: &mut [f64], _comp: &mut [f64]) {
    debug_assert!(f.len() >= g.len());
    if b.is_empty() {
        g.fill(0.0);
        return;
    }
    for (t, slot) in g.iter_mut().enumerate() {
        let imax = t.min(b.len() - 1);
        let mut sum = 0.0f64;
        let mut comp = 0.0f64;
        for i in 0..=imax {
            let x = b[i] * f[t - i];
            let t_ = sum + x;
            if sum.abs() >= x.abs() {
                comp += (sum - t_) + x;
            } else {
                comp += (x - t_) + sum;
            }
            sum = t_;
        }
        *slot = sum + comp;
    }
}

/// Lane convolution: `axpy` sweep per coefficient. For each `i`,
/// `g[i..] += b[i] · f[..k−i]` — contiguous loads, contiguous stores, no
/// loop-carried dependency inside the sweep. Each output element still
/// receives its terms in ascending-`i` order, so the result is bitwise
/// equal to [`conv_fold_scalar`].
#[cfg_attr(
    not(all(feature = "arch", any(target_arch = "x86_64", target_arch = "aarch64"))),
    allow(dead_code)
)]
#[inline(always)]
pub(crate) fn conv_fold_lanes(b: &[f64], f: &[f64], g: &mut [f64]) {
    let k = g.len();
    debug_assert!(f.len() >= k);
    g.fill(0.0);
    for (i, &bi) in b.iter().take(k).enumerate() {
        let bv = F64Lanes::<LANES>::splat(bi);
        let gs = &mut g[i..];
        let fs = &f[..k - i];
        let n = fs.len();
        let mut t = 0;
        while t + LANES <= n {
            let fv = F64Lanes::<LANES>::load(&fs[t..]);
            let gv = F64Lanes::<LANES>::load(&gs[t..]);
            (gv + bv * fv).store(&mut gs[t..]);
            t += LANES;
        }
        while t < n {
            gs[t] += bi * fs[t];
            t += 1;
        }
    }
}

/// Branchless exact error of `s + x` (Knuth two-sum), lane-wide. Yields
/// the identical representable error value the branchy Neumaier form
/// picks, without the data-dependent branch that defeats vectorization.
#[cfg_attr(
    not(all(feature = "arch", any(target_arch = "x86_64", target_arch = "aarch64"))),
    allow(dead_code)
)]
#[inline(always)]
fn two_sum<const N: usize>(s: F64Lanes<N>, x: F64Lanes<N>) -> (F64Lanes<N>, F64Lanes<N>) {
    let t = s + x;
    let z = t - s;
    let err = (s - (t - z)) + (x - z);
    (t, err)
}

/// Scalar Knuth two-sum for the vector kernels' remainder elements.
#[cfg_attr(
    not(all(feature = "arch", any(target_arch = "x86_64", target_arch = "aarch64"))),
    allow(dead_code)
)]
#[inline(always)]
fn two_sum_1(s: f64, x: f64) -> (f64, f64) {
    let t = s + x;
    let z = t - s;
    (t, (s - (t - z)) + (x - z))
}

/// Lane convolution with compensated accumulation: the `axpy` sweep of
/// [`conv_fold_lanes`] plus a per-output compensator array (`comp`, at
/// least `g.len()` long) accumulating the exact rounding error of every
/// addition. Folding `comp` into `g` at the end reproduces the Neumaier
/// `sum + comp` finish, so the output is bitwise equal to
/// [`conv_fold_compensated_scalar`] and carries the same error bound.
#[cfg_attr(
    not(all(feature = "arch", any(target_arch = "x86_64", target_arch = "aarch64"))),
    allow(dead_code)
)]
#[inline(always)]
pub(crate) fn conv_fold_compensated_lanes(b: &[f64], f: &[f64], g: &mut [f64], comp: &mut [f64]) {
    let k = g.len();
    debug_assert!(f.len() >= k);
    debug_assert!(comp.len() >= k);
    g.fill(0.0);
    comp[..k].fill(0.0);
    for (i, &bi) in b.iter().take(k).enumerate() {
        let bv = F64Lanes::<LANES>::splat(bi);
        let gs = &mut g[i..];
        let cs = &mut comp[i..k];
        let fs = &f[..k - i];
        let n = fs.len();
        let mut t = 0;
        while t + LANES <= n {
            let fv = F64Lanes::<LANES>::load(&fs[t..]);
            let gv = F64Lanes::<LANES>::load(&gs[t..]);
            let (sum, err) = two_sum(gv, bv * fv);
            sum.store(&mut gs[t..]);
            let cv = F64Lanes::<LANES>::load(&cs[t..]);
            (cv + err).store(&mut cs[t..]);
            t += LANES;
        }
        while t < n {
            let (sum, err) = two_sum_1(gs[t], bi * fs[t]);
            gs[t] = sum;
            cs[t] += err;
            t += 1;
        }
    }
    for (slot, &c) in g.iter_mut().zip(comp.iter()) {
        *slot += c;
    }
}

// ---------------------------------------------------------------------
// Binomial pmf setup: b[i] = C(m, i) pⁱ q^{m−i} by the ratio recurrence
// ---------------------------------------------------------------------

/// Fill `b` with the binomial pmf prefix `b[0..]` from `b0 = q^m` and the
/// odds `ratio = p/q`, via a two-pass form of the ratio recurrence:
///
/// 1. `b[i] ← step_i = (ratio · (m − i + 1)) / i` — independent per
///    element, so the division (the latency hog of the fused recurrence)
///    vectorizes;
/// 2. `b[i] ← b[i−1] · step_i` — the sequential prefix product, now a
///    single multiply deep per element instead of mul·mul·div.
///
/// Every backend runs this same function (monomorphized per ISA), so pmf
/// terms are bitwise identical no matter which backend folds the bin.
#[inline(always)]
pub(crate) fn binomial_pmf_two_pass(b: &mut [f64], m: u64, ratio: f64, b0: f64) {
    if b.is_empty() {
        return;
    }
    b[0] = b0;
    // m ≤ 2^53 and i ≤ b.len() ≤ K, so both conversions are exact and
    // (mf − i + 1) equals the integer m − i + 1 exactly.
    let mf = m as f64;
    for (i, slot) in b.iter_mut().enumerate().skip(1) {
        *slot = (ratio * (mf - i as f64 + 1.0)) / i as f64;
    }
    for i in 1..b.len() {
        b[i] *= b[i - 1];
    }
}

// ---------------------------------------------------------------------
// Histogram reductions (pileup side)
// ---------------------------------------------------------------------

/// Widening sum of a `u32` histogram slice. Integer arithmetic — exact in
/// any order, identical on every backend.
#[inline(always)]
pub(crate) fn sum_u32_impl(counts: &[u32]) -> u64 {
    counts.iter().map(|&c| c as u64).sum()
}

/// `dst[i] += src[i]` element-wise (bin aggregation across the 8
/// base/strand groups). Caller guarantees no overflow: group counts sum
/// to the column depth, which is itself a `u32`.
#[inline(always)]
pub(crate) fn accumulate_u32_impl(dst: &mut [u32], src: &[u32]) {
    for (d, &s) in dst.iter_mut().zip(src.iter()) {
        *d += s;
    }
}

/// `Σ counts[i]·table[i]` — the λ reduction (`count(q) · p(q)` over the
/// Phred table). Blocked over four independent accumulators with a fixed
/// reduction tree, so every backend sums in the same order.
#[inline(always)]
pub(crate) fn dot_u32_f64_impl(counts: &[u32], table: &[f64]) -> f64 {
    let n = counts.len().min(table.len());
    let mut acc = [0.0f64; LANES];
    let mut i = 0;
    while i + LANES <= n {
        for (l, slot) in acc.iter_mut().enumerate() {
            *slot += counts[i + l] as f64 * table[i + l];
        }
        i += LANES;
    }
    let mut rest = 0.0f64;
    while i < n {
        rest += counts[i] as f64 * table[i];
        i += 1;
    }
    F64Lanes::<LANES>(acc).reduce_sum() + rest
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn random_f64s(n: usize, seed: u64) -> Vec<f64> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| (xorshift(&mut s) >> 11) as f64 / (1u64 << 53) as f64)
            .collect()
    }

    #[test]
    fn lane_conv_matches_scalar_bitwise() {
        for &(cut, k) in &[
            (1usize, 1usize),
            (3, 7),
            (8, 5),
            (80, 80),
            (81, 173),
            (40, 256),
        ] {
            let b = random_f64s(cut + 1, 0xA1 + cut as u64);
            let f = random_f64s(k, 0xB2 + k as u64);
            let mut g_scalar = vec![0.0; k];
            let mut g_lanes = vec![0.0; k];
            conv_fold_scalar(&b, &f, &mut g_scalar);
            conv_fold_lanes(&b, &f, &mut g_lanes);
            assert_eq!(g_scalar, g_lanes, "plain conv cut={cut} k={k}");

            let mut comp = vec![0.0; k];
            let mut gc_scalar = vec![0.0; k];
            let mut gc_lanes = vec![0.0; k];
            conv_fold_compensated_scalar(&b, &f, &mut gc_scalar, &mut comp);
            conv_fold_compensated_lanes(&b, &f, &mut gc_lanes, &mut comp);
            for (t, (a, c)) in gc_scalar.iter().zip(gc_lanes.iter()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    c.to_bits(),
                    "compensated conv cut={cut} k={k} t={t}: {a:e} vs {c:e}"
                );
            }
        }
    }

    #[test]
    fn compensated_conv_beats_plain_on_cancelling_sums() {
        // A sum designed to lose low-order bits without compensation.
        let b = vec![1.0, 1e-17, 1e-17, 1e-17, 1e-17, 1e-17, 1e-17, 1e-17];
        let f = vec![1.0; 8];
        let mut plain = vec![0.0; 8];
        let mut comp_out = vec![0.0; 8];
        let mut comp = vec![0.0; 8];
        conv_fold_lanes(&b, &f, &mut plain);
        conv_fold_compensated_lanes(&b, &f, &mut comp_out, &mut comp);
        // t = 7 accumulates 1.0 + 7·1e-17: plain rounds each add to 1.0.
        assert_eq!(plain[7], 1.0);
        assert_eq!(comp_out[7], 1.0 + 7e-17);
    }

    #[test]
    fn empty_and_degenerate_shapes() {
        let mut g = vec![1.0; 4];
        conv_fold_scalar(&[], &[0.5; 4], &mut g);
        assert_eq!(g, vec![0.0; 4]);
        let mut g = vec![1.0; 4];
        conv_fold_lanes(&[], &[0.5; 4], &mut g);
        assert_eq!(g, vec![0.0; 4]);
        let mut comp = vec![0.0; 4];
        let mut g = vec![1.0; 4];
        conv_fold_compensated_lanes(&[], &[0.5; 4], &mut g, &mut comp);
        assert_eq!(g, vec![0.0; 4]);
        let mut empty: [f64; 0] = [];
        conv_fold_lanes(&[1.0], &[], &mut empty);
        binomial_pmf_two_pass(&mut [], 5, 0.5, 1.0);
    }

    #[test]
    fn pmf_two_pass_matches_direct_recurrence() {
        // Against an independently computed C(m,i)·pⁱ·q^(m−i).
        let (m, p) = (30u64, 0.3f64);
        let q = 1.0 - p;
        let mut b = vec![0.0; 11];
        binomial_pmf_two_pass(&mut b, m, p / q, q.powi(m as i32));
        let mut choose = 1.0f64;
        for (i, &bi) in b.iter().enumerate() {
            let direct = choose * p.powi(i as i32) * q.powi((m - i as u64) as i32);
            assert!(
                (bi - direct).abs() <= 1e-14 * direct.max(1e-300),
                "i={i}: {bi:e} vs {direct:e}"
            );
            choose = choose * (m - i as u64) as f64 / (i + 1) as f64;
        }
        let total_prefix: f64 = b.iter().sum();
        assert!(total_prefix < 1.0);
    }

    #[test]
    fn u32_reductions() {
        let counts: Vec<u32> = (0..23).map(|i| i * 7 + 1).collect();
        assert_eq!(
            sum_u32_impl(&counts),
            counts.iter().map(|&c| c as u64).sum::<u64>()
        );
        assert_eq!(sum_u32_impl(&[]), 0);

        let mut dst = vec![1u32; 10];
        accumulate_u32_impl(&mut dst, &[2u32; 10]);
        assert_eq!(dst, vec![3u32; 10]);

        let table = random_f64s(23, 0xC3);
        let direct: f64 = counts
            .iter()
            .zip(table.iter())
            .map(|(&c, &t)| c as f64 * t)
            .sum();
        let blocked = dot_u32_f64_impl(&counts, &table);
        assert!((blocked - direct).abs() <= 1e-12 * direct.abs());
        assert_eq!(dot_u32_f64_impl(&[], &[]), 0.0);
    }

    #[test]
    fn two_sum_error_is_exact() {
        for &(s, x) in &[(1.0f64, 1e-17f64), (1e-17, 1.0), (0.1, 0.2), (1e16, 1.0)] {
            let (t, e) = two_sum_1(s, x);
            // Knuth's two-sum and the branchy Neumaier form both extract
            // the exact (representable) rounding error — bit-identical.
            let t2 = s + x;
            let e2 = if s.abs() >= x.abs() {
                (s - t2) + x
            } else {
                (x - t2) + s
            };
            assert_eq!(t.to_bits(), t2.to_bits());
            assert_eq!(e.to_bits(), e2.to_bits());
            // Exactness spot check on a case the naive sum gets wrong.
            if (s, x) == (1e16, 1.0) {
                assert_eq!(e, 1.0 - ((s + x) - s));
            }
        }
    }
}
